#!/bin/sh
# Integration test for cross-run computation reuse (DESIGN.md §17):
#
#  1. A --mapper sweep run twice against one --mapcache-file is byte-identical
#     on stdout, and the second (warm) run's metrics show nonzero
#     mapper.mapcache.file_hits and file_loads with zero file_appends.
#  2. ULD3D_MAPCACHE_FILE mirrors the flag.
#  3. A corrupted cache file is refused with exit 3 (config error) before
#     any work runs; ULD3D_NO_MAPCACHE_FILE bypasses the file layer and the
#     same run exits 0.
#  4. ULD3D_NO_SWEEP_DEDUP leaves the sweep output byte-identical (dedup is
#     a pure evaluation-count optimization).
#
# Usage: cli_mapcache.sh /path/to/uld3d_cli
set -u

cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# Metric check: the named counter's exported value is nonzero / zero (a
# counter that was never touched may be absent entirely — that counts as 0).
metric_nonzero() { # file name
  grep "\"name\": \"$2\"" "$1" | grep -q '"value": [1-9]'
}
metric_zero() { # file name
  ! metric_nonzero "$1" "$2"
}

store="$tmpdir/mapcache.bin"

# --- 1. cold run, then warm run: byte-identical, file hits counted ----------
"$cli" sweep --mapper --keep-going --jobs 4 --mapcache-file "$store" \
  --metrics "$tmpdir/cold.json" \
  > "$tmpdir/cold.out" 2> "$tmpdir/cold.err" || fail "cold mapper sweep failed"
[ -s "$store" ] || fail "cold run left no cache file"
metric_nonzero "$tmpdir/cold.json" mapper.mapcache.file_appends \
  || fail "cold run appended nothing to the store"
metric_zero "$tmpdir/cold.json" mapper.mapcache.file_loads \
  || fail "cold run claims to have loaded entries"

"$cli" sweep --mapper --keep-going --jobs 4 --mapcache-file "$store" \
  --metrics "$tmpdir/warm.json" \
  > "$tmpdir/warm.out" 2> "$tmpdir/warm.err" || fail "warm mapper sweep failed"
cmp -s "$tmpdir/cold.out" "$tmpdir/warm.out" \
  || fail "warm-cache stdout differs from cold run"
metric_nonzero "$tmpdir/warm.json" mapper.mapcache.file_hits \
  || fail "warm run shows no file hits"
metric_nonzero "$tmpdir/warm.json" mapper.mapcache.file_loads \
  || fail "warm run loaded nothing"
metric_zero "$tmpdir/warm.json" mapper.mapcache.file_appends \
  || fail "warm run appended entries it should already have"
metric_zero "$tmpdir/warm.json" mapper.mapcache.misses \
  || fail "warm run missed the cache"

# --- 2. env var mirrors the flag --------------------------------------------
env ULD3D_MAPCACHE_FILE="$store" "$cli" sweep --mapper --keep-going --jobs 4 \
  --metrics "$tmpdir/env.json" > "$tmpdir/env.out" 2> /dev/null \
  || fail "sweep under ULD3D_MAPCACHE_FILE exited non-zero"
cmp -s "$tmpdir/cold.out" "$tmpdir/env.out" \
  || fail "ULD3D_MAPCACHE_FILE stdout differs"
metric_nonzero "$tmpdir/env.json" mapper.mapcache.file_hits \
  || fail "ULD3D_MAPCACHE_FILE run shows no file hits"

# --- 3. corrupt store: refused with exit 3; escape hatch bypasses it --------
cp "$store" "$tmpdir/corrupt.bin"
# Flip one mid-file byte (printf octal escape keeps this POSIX-portable).
printf '\252' | dd of="$tmpdir/corrupt.bin" bs=1 seek=100 conv=notrunc 2>/dev/null
"$cli" sweep --mapper --keep-going --mapcache-file "$tmpdir/corrupt.bin" \
  > /dev/null 2> "$tmpdir/corrupt.err"
[ $? -eq 3 ] || fail "corrupt cache file should exit 3 (config error)"
grep -qi "checksum\|map-cache" "$tmpdir/corrupt.err" \
  || fail "corrupt-cache refusal does not name the cache file problem"

env ULD3D_NO_MAPCACHE_FILE=1 "$cli" sweep --mapper --keep-going \
  --mapcache-file "$tmpdir/corrupt.bin" > "$tmpdir/nofile.out" 2> /dev/null \
  || fail "ULD3D_NO_MAPCACHE_FILE should ignore the corrupt store and exit 0"
cmp -s "$tmpdir/cold.out" "$tmpdir/nofile.out" \
  || fail "ULD3D_NO_MAPCACHE_FILE stdout differs"

# A truncated store is refused too.
head -c 40 "$store" > "$tmpdir/trunc.bin"
"$cli" sweep --mapper --keep-going --mapcache-file "$tmpdir/trunc.bin" \
  > /dev/null 2>&1
[ $? -eq 3 ] || fail "truncated cache file should exit 3"

# --- 4. dedup lever never changes output ------------------------------------
env ULD3D_NO_SWEEP_DEDUP=1 "$cli" sweep --mapper --keep-going --jobs 4 \
  --mapcache-file "$store" > "$tmpdir/nodedup.out" 2> /dev/null \
  || fail "sweep under ULD3D_NO_SWEEP_DEDUP exited non-zero"
cmp -s "$tmpdir/cold.out" "$tmpdir/nodedup.out" \
  || fail "ULD3D_NO_SWEEP_DEDUP changed the sweep output"

# The analytic (default) sweep also accepts the flags and stays stable.
"$cli" sweep --keep-going --metrics "$tmpdir/analytic.json" \
  > "$tmpdir/analytic1.out" 2> /dev/null || fail "analytic sweep failed"
env ULD3D_NO_SWEEP_DEDUP=1 "$cli" sweep --keep-going \
  > "$tmpdir/analytic2.out" 2> /dev/null || fail "analytic sweep (no dedup) failed"
cmp -s "$tmpdir/analytic1.out" "$tmpdir/analytic2.out" \
  || fail "ULD3D_NO_SWEEP_DEDUP changed the analytic sweep output"
metric_nonzero "$tmpdir/analytic.json" dse.sweep.dedup_unique \
  || fail "analytic sweep exports no dedup_unique counter"

if [ "$failures" -ne 0 ]; then
  echo "$failures mapcache check(s) failed" >&2
  exit 1
fi
echo "cli_mapcache: all checks passed"
exit 0

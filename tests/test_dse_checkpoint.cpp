// dse/checkpoint: sweep checkpoint round-trips, refusal rules, interrupt +
// resume byte-identity, and deterministic shard/merge equivalence.
//
// The load-bearing guarantees (ROADMAP item 2):
//  * a checkpoint round-trips SweepRows BIT-exactly (doubles through %.17g),
//    including failed rows, so kSkipAndRecord semantics survive resume;
//  * a checkpoint is refused against a different grid/config (fingerprint),
//    and a torn/tampered file is refused by structural validation;
//  * an interrupted-then-resumed sweep produces rows, failure_summary() and
//    table output identical to an uninterrupted run at any jobs count;
//  * shards 0..N-1 merge into a result identical to the unsharded sweep,
//    and a sentinel row that disagrees across shards is detected.
#include "uld3d/dse/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "uld3d/dse/sweep.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::dse {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

Grid small_grid() {
  Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0, 4.0}).axis("y", {0.5, 1.5, 2.5});
  return grid;  // 12 points
}

const std::vector<std::string>& metrics2() {
  static const std::vector<std::string> names{"sum", "ratio"};
  return names;
}

/// Deterministic evaluator; design points with x*y > 7 are infeasible so
/// kSkipAndRecord failures flow through checkpoints too.
std::vector<double> eval_point(const std::vector<double>& p) {
  if (p[0] * p[1] > 7.0) {
    throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "x*y too large")
                          .with("x", p[0])
                          .with("y", p[1]));
  }
  return {p[0] + p[1] / 3.0, p[0] / p[1]};
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_rows_identical(const std::vector<SweepRow>& a,
                           const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid_index, b[i].grid_index) << "row " << i;
    ASSERT_EQ(a[i].params.size(), b[i].params.size());
    for (std::size_t p = 0; p < a[i].params.size(); ++p) {
      EXPECT_TRUE(bits_equal(a[i].params[p], b[i].params[p]))
          << "row " << i << " param " << p;
    }
    ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      EXPECT_TRUE(bits_equal(a[i].metrics[m], b[i].metrics[m]))
          << "row " << i << " metric " << m;
    }
    ASSERT_EQ(a[i].ok(), b[i].ok()) << "row " << i;
    if (!a[i].ok()) {
      EXPECT_EQ(a[i].failure->code, b[i].failure->code);
      EXPECT_EQ(a[i].failure->message, b[i].failure->message);
      EXPECT_EQ(a[i].failure->severity, b[i].failure->severity);
      EXPECT_EQ(a[i].failure->context, b[i].failure->context);
    }
  }
}

TEST(ShardSpecTest, ParsesValidSpecs) {
  const ShardSpec s = parse_shard_spec("2/8");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 8u);
  EXPECT_TRUE(s.sharded());
  EXPECT_FALSE(parse_shard_spec("0/1").sharded());
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "3", "/4", "4/", "4/4", "5/4", "-1/4", "a/b",
                          "1/4x", "1//4"}) {
    EXPECT_THROW((void)parse_shard_spec(bad), StatusError) << bad;
  }
}

TEST(ShardDomainTest, ShardsPartitionTheGridAndShareSentinels) {
  const std::size_t grid_size = 23;  // prime: no axis-aligned accidents
  const std::size_t count = 4;
  const std::vector<std::size_t> sentinels =
      sentinel_indices(grid_size, ShardSpec{0, count});
  ASSERT_FALSE(sentinels.empty());
  std::vector<int> owners(grid_size, 0);
  for (std::size_t s = 0; s < count; ++s) {
    const auto domain = shard_domain(grid_size, ShardSpec{s, count});
    EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
    EXPECT_TRUE(std::adjacent_find(domain.begin(), domain.end()) ==
                domain.end());  // no duplicates within a shard
    for (const std::size_t g : domain) {
      ASSERT_LT(g, grid_size);
      const bool owned = g % count == s;
      const bool sentinel =
          std::binary_search(sentinels.begin(), sentinels.end(), g);
      EXPECT_TRUE(owned || sentinel) << "shard " << s << " point " << g;
      if (owned) ++owners[g];
    }
  }
  // Strided ownership covers every point exactly once.
  EXPECT_TRUE(std::all_of(owners.begin(), owners.end(),
                          [](int n) { return n == 1; }));
}

TEST(ShardDomainTest, UnshardedRunsHaveNoSentinels) {
  EXPECT_TRUE(sentinel_indices(100, ShardSpec{0, 1}).empty());
  const auto domain = shard_domain(12, ShardSpec{0, 1});
  ASSERT_EQ(domain.size(), 12u);
  for (std::size_t g = 0; g < 12; ++g) EXPECT_EQ(domain[g], g);
}

TEST(FingerprintTest, SensitiveToGridMetricsAndConfig) {
  const Grid grid = small_grid();
  const std::string base = sweep_fingerprint(grid, metrics2(), "cfg");
  EXPECT_EQ(base, sweep_fingerprint(small_grid(), metrics2(), "cfg"));
  EXPECT_NE(base, sweep_fingerprint(grid, metrics2(), "other-cfg"));
  EXPECT_NE(base, sweep_fingerprint(grid, {"sum"}, "cfg"));
  Grid other;
  other.axis("x", {1.0, 2.0, 3.0, 4.0}).axis("y", {0.5, 1.5, 2.5000001});
  EXPECT_NE(base, sweep_fingerprint(other, metrics2(), "cfg"));
}

TEST(CheckpointRoundTripTest, ExoticDoublesAndFailedRowsAreBitExact) {
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "feedface00000000";
  ckpt.grid_size = 4;
  ckpt.param_names = {"x"};
  ckpt.metric_names = {"m1", "m2"};
  ckpt.completed = {false, true, false, true};

  SweepRow ok_row;
  ok_row.grid_index = 1;
  ok_row.params = {-0.0};
  ok_row.metrics = {5e-324 /* min denormal */,
                    0.1 /* classic non-representable */};
  SweepRow failed_row;
  failed_row.grid_index = 3;
  failed_row.params = {1.0 / 3.0};
  failed_row.metrics.assign(2, std::numeric_limits<double>::quiet_NaN());
  failed_row.failure =
      Failure(ErrorCode::kThermalLimit, "too hot: \"quoted\"\n")
          .with("budget_k", 10.0)
          .with("rise_k", 12.5);
  ckpt.rows = {ok_row, failed_row};

  const std::string path = temp_path("ckpt_roundtrip.json");
  save_checkpoint(ckpt, path);
  const SweepCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.schema_version, kCheckpointSchemaVersion);
  EXPECT_EQ(loaded.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(loaded.grid_size, 4u);
  EXPECT_EQ(loaded.completed, ckpt.completed);
  EXPECT_EQ(loaded.completed_count(), 2u);
  expect_rows_identical(loaded.rows, ckpt.rows);
  // -0.0 specifically: bit pattern, not just value equality.
  EXPECT_TRUE(std::signbit(loaded.rows[0].params[0]));
}

TEST(CheckpointRoundTripTest, ExtremeMagnitudesSurvive) {
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "f";
  ckpt.grid_size = 1;
  ckpt.param_names = {"x"};
  ckpt.metric_names = {"m"};
  ckpt.completed = {true};
  SweepRow row;
  row.grid_index = 0;
  row.params = {std::numeric_limits<double>::max()};
  row.metrics = {-std::numeric_limits<double>::min()};
  ckpt.rows = {row};
  const std::string path = temp_path("ckpt_extreme.json");
  save_checkpoint(ckpt, path);
  expect_rows_identical(load_checkpoint(path).rows, ckpt.rows);
}

TEST(CheckpointRefusalTest, FingerprintMismatchIsRefused) {
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "aaaa";
  ckpt.grid_size = 12;
  try {
    validate_checkpoint(ckpt, 12, "bbbb", ShardSpec{});
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
  }
}

TEST(CheckpointRefusalTest, GridSizeAndShardMismatchAreRefused) {
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "aaaa";
  ckpt.grid_size = 12;
  ckpt.shard = ShardSpec{1, 4};
  EXPECT_THROW(validate_checkpoint(ckpt, 13, "aaaa", ShardSpec{1, 4}),
               StatusError);
  EXPECT_THROW(validate_checkpoint(ckpt, 12, "aaaa", ShardSpec{2, 4}),
               StatusError);
  validate_checkpoint(ckpt, 12, "aaaa", ShardSpec{1, 4});  // matching: ok
}

TEST(CheckpointRefusalTest, TamperedFilesAreRefused) {
  // Start from a real, valid file...
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "f";
  ckpt.grid_size = 8;
  ckpt.param_names = {"x"};
  ckpt.metric_names = {"m"};
  ckpt.completed.assign(8, false);
  ckpt.completed[2] = true;
  SweepRow row;
  row.grid_index = 2;
  row.params = {1.0};
  row.metrics = {2.0};
  ckpt.rows = {row};
  const std::string path = temp_path("ckpt_tamper.json");
  save_checkpoint(ckpt, path);
  (void)load_checkpoint(path);  // sanity: valid as written

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  in.close();

  // Each variant mutates the ORIGINAL valid text independently.
  const auto write_variant = [&](const std::string& from,
                                 const std::string& to) {
    std::string mutated = text;
    const std::size_t pos = mutated.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    mutated.replace(pos, from.size(), to);
    std::ofstream out(path);
    out << mutated;
  };

  // Nibble 0 encodes bits 0..3: bit 2 set renders as "40".
  // Bitmap says point 3, the row says point 2: torn state, refused.
  write_variant("\"completed_bitmap\": \"40\"", "\"completed_bitmap\": \"80\"");
  EXPECT_THROW((void)load_checkpoint(path), StatusError);
  // Bitmap popcount != row count.
  write_variant("\"completed_bitmap\": \"40\"", "\"completed_bitmap\": \"c0\"");
  EXPECT_THROW((void)load_checkpoint(path), StatusError);
  // Row index escapes the grid.
  write_variant("\"index\": 2", "\"index\": 99");
  EXPECT_THROW((void)load_checkpoint(path), StatusError);
  // Wrong kind.
  write_variant("uld3d-sweep-checkpoint", "uld3d-bench-suite");
  EXPECT_THROW((void)load_checkpoint(path), StatusError);
}

TEST(CheckpointRefusalTest, FutureSchemaVersionIsRefused) {
  SweepCheckpoint ckpt;
  ckpt.fingerprint = "f";
  ckpt.grid_size = 0;
  ckpt.metric_names = {"m"};
  const std::string path = temp_path("ckpt_future.json");
  save_checkpoint(ckpt, path);
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  in.close();
  const std::size_t pos = text.find("\"schema_version\": 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::strlen("\"schema_version\": 1"),
               "\"schema_version\": 99");
  std::ofstream(path) << text;
  EXPECT_THROW((void)load_checkpoint(path), StatusError);
}

TEST(ResumableSweepTest, MatchesPlainSweepWithoutInterruption) {
  const Grid grid = small_grid();
  const SweepResult plain = run_sweep(grid, metrics2(), eval_point,
                                      {ErrorPolicy::kSkipAndRecord, 1});
  const std::string path = temp_path("ckpt_plain_equiv.json");
  std::remove(path.c_str());
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  const SweepResult resumable =
      run_sweep_resumable(grid, metrics2(), eval_point, options);
  expect_rows_identical(resumable.rows(), plain.rows());
  EXPECT_EQ(resumable.failure_summary(), plain.failure_summary());
  EXPECT_EQ(resumable.to_table().to_csv(), plain.to_table().to_csv());
  std::remove(path.c_str());
}

TEST(ResumableSweepTest, InterruptThenResumeIsByteIdentical) {
  const Grid grid = small_grid();
  const SweepResult plain = run_sweep(grid, metrics2(), eval_point,
                                      {ErrorPolicy::kSkipAndRecord, 1});
  const std::string path = temp_path("ckpt_interrupt.json");
  std::remove(path.c_str());

  // First run: trip the interrupt latch after 5 evaluations.  jobs=1 so the
  // count is exact; the runner must flush what finished and throw.
  set_interrupt_requested(false);
  int evaluated = 0;
  const auto interrupting_eval = [&](const std::vector<double>& p) {
    if (++evaluated == 5) set_interrupt_requested(true);
    return eval_point(p);
  };
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  options.checkpoint_interval = 2;
  EXPECT_THROW((void)run_sweep_resumable(grid, metrics2(), interrupting_eval,
                                         options),
               SweepInterrupted);
  set_interrupt_requested(false);

  // The flushed checkpoint holds exactly the completed prefix work...
  const SweepCheckpoint mid = load_checkpoint(path);
  EXPECT_EQ(mid.completed_count(), 5u);
  EXPECT_LT(mid.completed_count(), grid.size());

  // ...and the resumed run completes to a byte-identical result: rows,
  // failure summary (kSkipAndRecord failures recorded before the interrupt
  // included), and rendered table.
  options.resume = true;
  int resumed_evals = 0;
  const auto counting_eval = [&](const std::vector<double>& p) {
    ++resumed_evals;
    return eval_point(p);
  };
  const SweepResult resumed =
      run_sweep_resumable(grid, metrics2(), counting_eval, options);
  EXPECT_EQ(resumed_evals, static_cast<int>(grid.size()) - 5);
  expect_rows_identical(resumed.rows(), plain.rows());
  EXPECT_EQ(resumed.failure_summary(), plain.failure_summary());
  EXPECT_EQ(resumed.to_table().to_csv(), plain.to_table().to_csv());
  std::remove(path.c_str());
}

TEST(ResumableSweepTest, RecordedFailuresSurviveTheResumeBoundary) {
  // Force the FAILING points to complete before the interrupt, then resume:
  // their kSkipAndRecord failures must come back from the file, not from
  // re-evaluation.
  const Grid grid = small_grid();
  const SweepResult plain = run_sweep(grid, metrics2(), eval_point,
                                      {ErrorPolicy::kSkipAndRecord, 1});
  ASSERT_GT(plain.failed_count(), 0u);
  const std::string path = temp_path("ckpt_failures.json");
  std::remove(path.c_str());

  // grid_index 8 (x=3, y=2.5) fails; with jobs=1 points evaluate in grid
  // order, so interrupting after the 9th evaluation checkpoints that
  // recorded failure while points 9..11 remain.
  const std::size_t first_failing = 8;
  set_interrupt_requested(false);
  std::size_t evaluated = 0;
  const auto interrupting_eval = [&](const std::vector<double>& p) {
    if (++evaluated == first_failing + 1) set_interrupt_requested(true);
    return eval_point(p);
  };
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  EXPECT_THROW((void)run_sweep_resumable(grid, metrics2(), interrupting_eval,
                                         options),
               SweepInterrupted);
  set_interrupt_requested(false);

  // Resume with an evaluator that never fails and returns garbage: any
  // checkpointed point that got re-evaluated would diverge loudly.
  options.resume = true;
  const auto must_not_reevaluate = [](const std::vector<double>& p) {
    (void)p;
    return std::vector<double>{-1.0, -1.0};
  };
  const SweepResult resumed =
      run_sweep_resumable(grid, metrics2(), must_not_reevaluate, options);
  // The recorded failure at point 8 came back from the file...
  ASSERT_EQ(resumed.failed_count(), 1u);
  EXPECT_FALSE(resumed.rows()[first_failing].ok());
  EXPECT_EQ(resumed.rows()[first_failing].failure->code,
            plain.rows()[first_failing].failure->code);
  // ...with its summary line byte-identical to the uninterrupted run's.
  const std::string line = "point 8 (";
  const std::string plain_summary = plain.failure_summary();
  const std::size_t at = plain_summary.find(line);
  ASSERT_NE(at, std::string::npos);
  const std::string plain_line =
      plain_summary.substr(at, plain_summary.find('\n', at) - at);
  EXPECT_NE(resumed.failure_summary().find(plain_line), std::string::npos);
  // Completed ok-points were not re-run either: their metrics match the
  // plain run, not the garbage evaluator.
  expect_rows_identical({resumed.rows()[0]}, {plain.rows()[0]});
  std::remove(path.c_str());
}

TEST(ResumableSweepTest, RefusesToOverwriteWithoutResume) {
  const Grid grid = small_grid();
  const std::string path = temp_path("ckpt_no_clobber.json");
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  (void)run_sweep_resumable(grid, metrics2(), eval_point, options);
  try {
    (void)run_sweep_resumable(grid, metrics2(), eval_point, options);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
  }
  std::remove(path.c_str());
}

TEST(ResumableSweepTest, ResumingACompleteSweepReEvaluatesNothing) {
  const Grid grid = small_grid();
  const std::string path = temp_path("ckpt_complete.json");
  std::remove(path.c_str());
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  const SweepResult first =
      run_sweep_resumable(grid, metrics2(), eval_point, options);
  options.resume = true;
  bool evaluated = false;
  const SweepResult second = run_sweep_resumable(
      grid, metrics2(),
      [&](const std::vector<double>& p) {
        evaluated = true;
        return eval_point(p);
      },
      options);
  EXPECT_FALSE(evaluated);
  expect_rows_identical(second.rows(), first.rows());
  std::remove(path.c_str());
}

TEST(ShardMergeTest, ShardsMergeToTheUnshardedResultAtAnyJobs) {
  const Grid grid = small_grid();
  const SweepResult plain = run_sweep(grid, metrics2(), eval_point,
                                      {ErrorPolicy::kSkipAndRecord, 1});
  for (const int jobs : {1, 8}) {
    const std::size_t count = 4;
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < count; ++s) {
      const std::string path = temp_path(
          "ckpt_shard_" + std::to_string(jobs) + "_" + std::to_string(s) +
          ".json");
      std::remove(path.c_str());
      ResumableOptions options;
      options.jobs = jobs;
      options.shard = ShardSpec{s, count};
      options.checkpoint_path = path;
      options.config_hash = "cfg";
      (void)run_sweep_resumable(grid, metrics2(), eval_point, options);
      paths.push_back(path);
    }
    // Merge accepts the files in any order.
    std::rotate(paths.begin(), paths.begin() + 1, paths.end());
    const SweepResult merged =
        merge_shards(grid, metrics2(), "cfg", paths);
    expect_rows_identical(merged.rows(), plain.rows());
    EXPECT_EQ(merged.failure_summary(), plain.failure_summary());
    EXPECT_EQ(merged.to_table().to_csv(), plain.to_table().to_csv());
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

TEST(ShardMergeTest, TamperedSentinelIsDetected) {
  const Grid grid = small_grid();
  const std::size_t count = 3;
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < count; ++s) {
    const std::string path =
        temp_path("ckpt_sentinel_" + std::to_string(s) + ".json");
    std::remove(path.c_str());
    ResumableOptions options;
    options.jobs = 1;
    options.shard = ShardSpec{s, count};
    options.checkpoint_path = path;
    (void)run_sweep_resumable(grid, metrics2(), eval_point, options);
    paths.push_back(path);
  }
  // Flip one bit of a sentinel metric in shard 1 — as if that machine ran a
  // subtly different binary.  merge must refuse, not silently stitch.
  SweepCheckpoint tampered = load_checkpoint(paths[1]);
  const std::vector<std::size_t> sentinels =
      sentinel_indices(grid.size(), ShardSpec{0, count});
  ASSERT_FALSE(sentinels.empty());
  const std::size_t victim = sentinels.front();
  const auto it = std::find_if(
      tampered.rows.begin(), tampered.rows.end(),
      [&](const SweepRow& row) { return row.grid_index == victim; });
  ASSERT_NE(it, tampered.rows.end());
  it->metrics[0] = std::nextafter(it->metrics[0],
                                  std::numeric_limits<double>::infinity());
  save_checkpoint(tampered, paths[1]);
  try {
    (void)merge_shards(grid, metrics2(), "", paths);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("sentinel"), std::string::npos);
  }
  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(ShardMergeTest, MissingAndIncompleteShardsAreRefused) {
  const Grid grid = small_grid();
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    const std::string path =
        temp_path("ckpt_missing_" + std::to_string(s) + ".json");
    std::remove(path.c_str());
    ResumableOptions options;
    options.jobs = 1;
    options.shard = ShardSpec{s, 4};  // produced as 4-way shards...
    options.checkpoint_path = path;
    (void)run_sweep_resumable(grid, metrics2(), eval_point, options);
    paths.push_back(path);
  }
  // ...but only 2 files offered: the shard set {0..3} is incomplete.
  EXPECT_THROW((void)merge_shards(grid, metrics2(), "", paths), StatusError);
  // Duplicate shard files do not fake completeness either.
  EXPECT_THROW((void)merge_shards(grid, metrics2(), "",
                                  {paths[0], paths[0], paths[1], paths[1]}),
               StatusError);
  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(FailureSummaryTest, ItemizesInGridIndexOrderNotStorageOrder) {
  // Regression: a merged/resumed result can hold rows whose storage order
  // differs from grid order; the summary must label and order points by
  // grid_index so it is byte-identical to the uninterrupted run's.
  SweepRow a;
  a.grid_index = 7;
  a.params = {1.0};
  a.metrics = {std::numeric_limits<double>::quiet_NaN()};
  a.failure = Failure(ErrorCode::kThermalLimit, "late point");
  SweepRow b;
  b.grid_index = 2;
  b.params = {2.0};
  b.metrics = {std::numeric_limits<double>::quiet_NaN()};
  b.failure = Failure(ErrorCode::kInfeasiblePoint, "early point");
  const SweepResult shuffled({"x"}, {"m"}, {a, b});
  const SweepResult ordered({"x"}, {"m"}, {b, a});
  const std::string summary = shuffled.failure_summary();
  EXPECT_EQ(summary, ordered.failure_summary());
  const std::size_t early = summary.find("point 2");
  const std::size_t late = summary.find("point 7");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
}

}  // namespace
}  // namespace uld3d::dse

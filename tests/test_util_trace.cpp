#include "uld3d/util/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace uld3d {
namespace {

// The recorder is process-global; each test starts from an empty, enabled
// buffer and restores the disabled default.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::instance().clear();
    TraceRecorder::instance().set_capacity(1u << 20);
    TraceRecorder::instance().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::instance().set_enabled(false);
    TraceRecorder::instance().clear();
  }
};

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  { TraceSpan span("test.trace.unit", "test"); }
  const auto events = TraceRecorder::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.trace.unit");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST_F(TraceTest, NestedSpansCloseInnerFirstAndNestInTime) {
  {
    TraceSpan outer("test.trace.outer");
    {
      TraceSpan inner("test.trace.inner");
    }
  }
  const auto events = TraceRecorder::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner scope closes first, so it is recorded first.
  EXPECT_EQ(events[0].name, "test.trace.inner");
  EXPECT_EQ(events[1].name, "test.trace.outer");
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
  EXPECT_GE(outer.dur_us, inner.dur_us);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder::instance().set_enabled(false);
  { TraceSpan span("test.trace.disabled"); }
  EXPECT_EQ(TraceRecorder::instance().event_count(), 0u);
}

TEST_F(TraceTest, CapacityBoundsTheBufferAndCountsDrops) {
  TraceRecorder::instance().set_capacity(2);
  { TraceSpan a("a"); }
  { TraceSpan b("b"); }
  { TraceSpan c("c"); }
  EXPECT_EQ(TraceRecorder::instance().event_count(), 2u);
  EXPECT_EQ(TraceRecorder::instance().dropped(), 1u);
  TraceRecorder::instance().clear();
  EXPECT_EQ(TraceRecorder::instance().dropped(), 0u);
}

TEST_F(TraceTest, ChromeJsonIsWellFormedCompleteEvents) {
  {
    TraceSpan outer("test.trace.json \"quoted\"");
    TraceSpan inner("test.trace.child");
  }
  const std::string json = TraceRecorder::instance().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, SummaryTableAggregatesByName) {
  { TraceSpan a("test.trace.agg"); }
  { TraceSpan b("test.trace.agg"); }
  { TraceSpan c("test.trace.other"); }
  const Table table = TraceRecorder::instance().summary_table();
  EXPECT_EQ(table.row_count(), 2u);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("test.trace.agg"), std::string::npos);
  EXPECT_NE(rendered.find("test.trace.other"), std::string::npos);
}

TEST_F(TraceTest, ClearReanchorsTheEpoch) {
  { TraceSpan a("test.trace.before"); }
  TraceRecorder::instance().clear();
  { TraceSpan b("test.trace.after"); }
  const auto events = TraceRecorder::instance().events();
  ASSERT_EQ(events.size(), 1u);
  // Fresh epoch: the new span starts near zero, not after the old history.
  EXPECT_LT(events[0].ts_us, 1.0e6);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/util/bench.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "uld3d/util/check.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/provenance.hpp"

namespace uld3d {
namespace {

using bench::compute_stats;
using bench::Stats;

TEST(ComputeStatsTest, KnownOddSequence) {
  const Stats s = compute_stats({3.0, 1.0, 4.0, 5.0, 2.0});
  EXPECT_EQ(s.iterations, 5);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_s, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_s, 3.0);
  EXPECT_DOUBLE_EQ(s.median_s, 3.0);
  // |x - 3| = {0, 2, 1, 2, 1} -> median 1.
  EXPECT_DOUBLE_EQ(s.mad_s, 1.0);
  // Median CI: 1.96 * sqrt(pi/2) * 1.4826 * MAD / sqrt(n) — the sqrt(pi/2)
  // factor is the median's standard-error inflation over the mean's.
  EXPECT_NEAR(s.ci95_half_width_s,
              1.96 * std::sqrt(std::acos(-1.0) / 2.0) * 1.4826 * 1.0 /
                  std::sqrt(5.0),
              1e-12);
}

TEST(ComputeStatsTest, KnownEvenSequence) {
  const Stats s = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.iterations, 4);
  EXPECT_DOUBLE_EQ(s.median_s, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_s, 2.5);
  // |x - 2.5| = {1.5, 1.5, 0.5, 0.5} -> median 1.0.
  EXPECT_DOUBLE_EQ(s.mad_s, 1.0);
}

TEST(ComputeStatsTest, OutlierShiftsMedianLittle) {
  const Stats clean = compute_stats({1.0, 1.0, 1.0, 1.0, 1.0});
  const Stats noisy = compute_stats({1.0, 1.0, 1.0, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(clean.median_s, 1.0);
  EXPECT_DOUBLE_EQ(noisy.median_s, 1.0);   // robust center unmoved
  EXPECT_GT(noisy.mean_s, 20.0);           // mean is not
}

TEST(ComputeStatsTest, EmptySampleYieldsZeros) {
  const Stats s = compute_stats({});
  EXPECT_EQ(s.iterations, 0);
  EXPECT_DOUBLE_EQ(s.min_s, 0.0);
  EXPECT_DOUBLE_EQ(s.median_s, 0.0);
  EXPECT_DOUBLE_EQ(s.mad_s, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width_s, 0.0);
}

TEST(ComputeStatsTest, SingleSampleHasZeroSpread) {
  const Stats s = compute_stats({0.25});
  EXPECT_EQ(s.iterations, 1);
  EXPECT_DOUBLE_EQ(s.min_s, 0.25);
  EXPECT_DOUBLE_EQ(s.max_s, 0.25);
  EXPECT_DOUBLE_EQ(s.median_s, 0.25);
  EXPECT_DOUBLE_EQ(s.mad_s, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width_s, 0.0);
}

TEST(ProvenanceTest, CaptureIsPopulated) {
  const Provenance p = capture_provenance();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.build_type.empty());
  EXPECT_FALSE(p.system.empty());
  EXPECT_FALSE(p.hostname.empty());
  EXPECT_GT(p.unix_time_s, 1700000000);  // after Nov 2023: clock is sane
  // ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ"
  ASSERT_EQ(p.timestamp_utc.size(), 20u);
  EXPECT_EQ(p.timestamp_utc[10], 'T');
  EXPECT_EQ(p.timestamp_utc.back(), 'Z');
}

TEST(ProvenanceTest, JsonIsValidAndCarriesFields) {
  Provenance p = capture_provenance();
  p.config_hashes.emplace_back("paper_sec2.ini", fnv1a_hex("contents"));
  const JsonValue doc = json_parse(provenance_json(p));
  EXPECT_EQ(doc.at("git_sha").as_string(), p.git_sha);
  EXPECT_EQ(doc.at("hostname").as_string(), p.hostname);
  EXPECT_EQ(doc.at("build_type").as_string(), p.build_type);
  EXPECT_DOUBLE_EQ(doc.at("unix_time_s").as_number(),
                   static_cast<double>(p.unix_time_s));
  const JsonValue& hashes = doc.at("config_hashes");
  EXPECT_EQ(hashes.at("paper_sec2.ini").as_string(), fnv1a_hex("contents"));
}

TEST(ProvenanceTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a_hash("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(fnv1a_hex("foobar"), "85944171f73967e8");
  EXPECT_EQ(fnv1a_hex("").size(), 16u);
}

TEST(HarnessTest, TimeReturnsLastResultAndRecordsSamples) {
  bench::Harness h("unit_suite");
  int calls = 0;
  const int result = h.time("kernel", [&] { return ++calls; });
  // default options: 1 warmup (discarded) + 5 timed iterations.
  EXPECT_EQ(h.options().warmup, 1);
  EXPECT_EQ(h.options().iterations, 5);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(result, 6);  // value of the last timed invocation
  const Stats& s = h.stats("kernel");
  EXPECT_EQ(s.iterations, 5);
  EXPECT_GE(s.min_s, 0.0);
  EXPECT_GE(s.max_s, s.min_s);
}

TEST(HarnessTest, VoidCallableIsTimedToo) {
  bench::Harness h("unit_suite");
  int calls = 0;
  h.time("void_kernel", [&] { ++calls; });
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(h.stats("void_kernel").iterations, 5);
}

TEST(HarnessTest, StatsThrowsForUnknownBenchmark) {
  bench::Harness h("unit_suite");
  EXPECT_THROW((void)h.stats("never_recorded"), PreconditionError);
}

TEST(HarnessTest, ToJsonIsValidSchemaVersionedDocument) {
  bench::Harness h("unit_suite");
  h.record_samples("stage", {0.010, 0.012, 0.011});
  h.value("edp_benefit", 5.4321, "ratio");
  h.note_config("workload", "resnet18");
  const JsonValue doc = json_parse(h.to_json());
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(),
                   static_cast<double>(bench::kBenchSchemaVersion));
  EXPECT_EQ(doc.at("suite").as_string(), "unit_suite");
  EXPECT_FALSE(doc.at("provenance").at("git_sha").as_string().empty());

  const JsonValue& benches = doc.at("benchmarks");
  ASSERT_EQ(benches.as_array().size(), 1u);
  const JsonValue& b = benches.as_array().front();
  EXPECT_EQ(b.at("name").as_string(), "stage");
  EXPECT_DOUBLE_EQ(b.at("median_s").as_number(), 0.011);
  EXPECT_EQ(b.at("samples_s").as_array().size(), 3u);

  const JsonValue& values = doc.at("values");
  ASSERT_EQ(values.as_array().size(), 1u);
  EXPECT_EQ(values.as_array().front().at("name").as_string(), "edp_benefit");
  EXPECT_DOUBLE_EQ(values.as_array().front().at("value").as_number(), 5.4321);
  EXPECT_EQ(values.as_array().front().at("unit").as_string(), "ratio");

  const JsonValue& hashes = doc.at("provenance").at("config_hashes");
  EXPECT_EQ(hashes.at("workload").as_string(), fnv1a_hex("resnet18"));
}

TEST(HarnessTest, TimingValuesLiveInTheirOwnArray) {
  bench::Harness h("unit_suite");
  h.record_samples("stage", {0.010});
  h.value("edp_benefit", 5.4, "ratio");
  h.timing_value("kernel_ns_per_op", 1.75, "ns");
  const JsonValue doc = json_parse(h.to_json());
  // Timing-derived scalars must NOT land in the hard-gated "values" array.
  ASSERT_EQ(doc.at("values").as_array().size(), 1u);
  EXPECT_EQ(doc.at("values").as_array().front().at("name").as_string(),
            "edp_benefit");
  const JsonValue& timing = doc.at("timing_values");
  ASSERT_EQ(timing.as_array().size(), 1u);
  EXPECT_EQ(timing.as_array().front().at("name").as_string(),
            "kernel_ns_per_op");
  EXPECT_DOUBLE_EQ(timing.as_array().front().at("value").as_number(), 1.75);
  EXPECT_EQ(timing.as_array().front().at("unit").as_string(), "ns");
}

TEST(HarnessTest, TimingValuesArrayPresentWhenEmpty) {
  bench::Harness h("unit_suite");
  h.record_samples("stage", {0.010});
  const JsonValue doc = json_parse(h.to_json());
  EXPECT_TRUE(doc.at("timing_values").is_array());
  EXPECT_TRUE(doc.at("timing_values").as_array().empty());
}

TEST(HarnessTest, NonFiniteValuesSurviveJsonRoundTrip) {
  bench::Harness h("unit_suite");
  h.record_samples("stage", {0.010});
  h.value("bad_ratio", std::nan(""), "ratio");
  const JsonValue doc = json_parse(h.to_json());  // must still parse
  EXPECT_EQ(doc.at("values").as_array().front().at("value").as_string(),
            "nan");
}

TEST(HarnessTest, EmptySamplesRejected) {
  bench::Harness h("unit_suite");
  EXPECT_THROW(h.record_samples("empty", {}), PreconditionError);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/util/check.hpp"

#include <gtest/gtest.h>

namespace uld3d {
namespace {

TEST(Check, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(expects(true, "never fires"));
}

TEST(Check, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(expects(false, "boom"), PreconditionError);
}

TEST(Check, EnsuresThrowsInvariantError) {
  EXPECT_THROW(ensures(false, "boom"), InvariantError);
}

TEST(Check, MessageContainsLocationAndText) {
  try {
    expects(false, "my message");
    FAIL() << "expects did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my message"), std::string::npos);
    EXPECT_NE(what.find("test_util_check.cpp"), std::string::npos);
  }
}

TEST(Check, HierarchyRootsAtError) {
  EXPECT_THROW(expects(false, "x"), Error);
  EXPECT_THROW(ensures(false, "x"), Error);
  EXPECT_THROW(expects(false, "x"), std::runtime_error);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/nn/layer.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {
namespace {

TEST(Layer, ConvOpsCountMacTimesTwo) {
  // 3x3 conv, 64 out x 32 in channels on a 10x10 map.
  const Layer conv = make_conv("c", 64, 32, 10, 10, 3, 3);
  EXPECT_EQ(conv.macs(), 64 * 32 * 10 * 10 * 9);
  EXPECT_EQ(conv.ops(), 2 * conv.macs());
}

TEST(Layer, ConvWeightAccounting) {
  const Layer conv = make_conv("c", 64, 32, 10, 10, 3, 3);
  EXPECT_EQ(conv.weight_count(), 64 * 32 * 9);
  EXPECT_EQ(conv.weight_bits(8), 64 * 32 * 9 * 8);
  EXPECT_EQ(conv.weight_bits(4), 64 * 32 * 9 * 4);
}

TEST(Layer, ConvInputWindowIncludesHalo) {
  const Layer conv = make_conv("c", 8, 4, 10, 10, 3, 3, /*stride=*/1);
  // Input extent (ox-1)*s + fx = 12.
  EXPECT_EQ(conv.conv().input_x(), 12);
  EXPECT_EQ(conv.input_bits(8), 4 * 12 * 12 * 8);
}

TEST(Layer, StridedConvInputWindow) {
  const Layer conv = make_conv("c", 8, 4, 10, 10, 3, 3, /*stride=*/2);
  EXPECT_EQ(conv.conv().input_x(), 21);  // (10-1)*2 + 3
}

TEST(Layer, ConvOutputBits) {
  const Layer conv = make_conv("c", 8, 4, 10, 10, 3, 3);
  EXPECT_EQ(conv.output_bits(8), 8 * 10 * 10 * 8);
}

TEST(Layer, FcIsOneByOneConv) {
  const Layer fc = make_fc("fc", 1000, 512);
  EXPECT_TRUE(fc.is_conv());
  EXPECT_EQ(fc.macs(), 1000 * 512);
  EXPECT_EQ(fc.weight_count(), 1000 * 512);
  EXPECT_EQ(fc.output_bits(8), 1000 * 8);
}

TEST(Layer, PoolHasNoWeights) {
  const Layer pool = make_pool("p", 64, 5, 5, 2, 2, 2);
  EXPECT_TRUE(pool.is_pool());
  EXPECT_EQ(pool.weight_count(), 0);
  EXPECT_EQ(pool.weight_bits(8), 0);
  EXPECT_EQ(pool.ops(), 64 * 5 * 5 * 4);  // one op per tap
}

TEST(Layer, EltwiseCountsTwoInputOperands) {
  const Layer add = make_eltwise("a", 16, 4, 4);
  EXPECT_TRUE(add.is_eltwise());
  EXPECT_EQ(add.ops(), 16 * 4 * 4);
  EXPECT_EQ(add.input_bits(8), 2 * 16 * 4 * 4 * 8);
  EXPECT_EQ(add.output_bits(8), 16 * 4 * 4 * 8);
}

TEST(Layer, AccessorsEnforceKind) {
  const Layer conv = make_conv("c", 1, 1, 1, 1, 1, 1);
  EXPECT_THROW(conv.pool(), PreconditionError);
  EXPECT_THROW(conv.eltwise(), PreconditionError);
  const Layer pool = make_pool("p", 1, 1, 1, 1, 1, 1);
  EXPECT_THROW(pool.conv(), PreconditionError);
}

TEST(Layer, RejectsNonPositiveDimensions) {
  EXPECT_THROW(make_conv("bad", 0, 1, 1, 1, 1, 1), PreconditionError);
  EXPECT_THROW(make_conv("bad", 1, 1, 1, 1, 1, 1, 0), PreconditionError);
  EXPECT_THROW(make_pool("bad", 1, 0, 1, 1, 1, 1), PreconditionError);
  EXPECT_THROW(make_eltwise("bad", 1, 1, 0), PreconditionError);
}

TEST(Layer, RejectsNonPositivePrecision) {
  const Layer conv = make_conv("c", 1, 1, 1, 1, 1, 1);
  EXPECT_THROW(conv.weight_bits(0), PreconditionError);
  EXPECT_THROW(conv.input_bits(-1), PreconditionError);
}

TEST(Layer, NamePreserved) {
  EXPECT_EQ(make_conv("L2.0 CONV1", 1, 1, 1, 1, 1, 1).name(), "L2.0 CONV1");
}

struct ConvCase {
  std::int64_t k, c, ox, fx, stride;
};

class ConvInvariant : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvInvariant, OpsScaleLinearlyInEachDimension) {
  const auto p = GetParam();
  const Layer base = make_conv("b", p.k, p.c, p.ox, p.ox, p.fx, p.fx, p.stride);
  const Layer twice_k =
      make_conv("k", 2 * p.k, p.c, p.ox, p.ox, p.fx, p.fx, p.stride);
  EXPECT_EQ(twice_k.ops(), 2 * base.ops());
  EXPECT_EQ(twice_k.weight_count(), 2 * base.weight_count());
  // Input traffic does not depend on K.
  EXPECT_EQ(twice_k.input_bits(8), base.input_bits(8));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvInvariant,
    ::testing::Values(ConvCase{16, 16, 8, 3, 1}, ConvCase{64, 3, 112, 7, 2},
                      ConvCase{512, 512, 7, 3, 1}, ConvCase{128, 64, 28, 1, 2},
                      ConvCase{1000, 512, 1, 1, 1}));

}  // namespace
}  // namespace uld3d::nn

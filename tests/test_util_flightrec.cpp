#include "uld3d/util/flightrec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d {
namespace {

// The flight recorder is process-global and always on: rings accumulate
// records across every test in this binary.  Tests therefore assert on
// *relative* state (depth deltas, "contains a record named X") rather than
// absolute ring contents, and use unique record names as markers.

std::string temp_postmortem_path(const char* tag) {
  return testing::TempDir() + "flightrec_" + tag + ".postmortem.json";
}

/// The thread entry for this test's own thread in a parsed postmortem.
const JsonValue* own_thread(const JsonValue& doc) {
  const std::uint32_t id = flightrec::thread_id();
  for (const JsonValue& t : doc.at("threads").as_array()) {
    if (static_cast<std::uint32_t>(t.at("id").as_number()) == id) return &t;
  }
  return nullptr;
}

/// Dump to a fresh temp file and parse it back.
JsonValue dump_and_parse(const char* tag) {
  const std::string path = temp_postmortem_path(tag);
  EXPECT_TRUE(flightrec::install_postmortem(path));
  EXPECT_TRUE(flightrec::write_postmortem("test"));
  JsonValue doc = json_parse_file(path);
  std::remove(path.c_str());
  return doc;
}

TEST(FlightRecTest, ThreadIdIsStableAndNameRoundTrips) {
  const std::uint32_t id = flightrec::thread_id();
  EXPECT_EQ(flightrec::thread_id(), id);
  EXPECT_LT(id, flightrec::kMaxThreads);
  EXPECT_GE(flightrec::thread_count(), 1u);

  flightrec::set_thread_name("flightrec-test");
  EXPECT_STREQ(flightrec::thread_name(id), "flightrec-test");
  // Ring names share pthread_setname_np's 15-character cap.
  flightrec::set_thread_name("a-very-long-thread-name");
  EXPECT_STREQ(flightrec::thread_name(id), "a-very-long-thr");
  flightrec::set_thread_name("flightrec-test");
  EXPECT_STREQ(flightrec::thread_name(flightrec::kMaxThreads + 7), "");
}

TEST(FlightRecTest, InstallArmsAndRefreshesThePath) {
  const std::string a = temp_postmortem_path("path_a");
  const std::string b = temp_postmortem_path("path_b");
  ASSERT_TRUE(flightrec::install_postmortem(a));
  EXPECT_TRUE(flightrec::postmortem_installed());
  EXPECT_EQ(std::string(flightrec::postmortem_path()), a);
  ASSERT_TRUE(flightrec::install_postmortem(b));
  EXPECT_EQ(std::string(flightrec::postmortem_path()), b);
  // An over-long path must be refused, leaving the previous arm in place.
  EXPECT_FALSE(flightrec::install_postmortem(std::string(4096, 'x')));
  EXPECT_EQ(std::string(flightrec::postmortem_path()), b);
}

TEST(FlightRecTest, PostmortemNamesActiveSpansInNestingOrder) {
  flightrec::span_begin("flightrec.outer");
  flightrec::span_begin("flightrec.inner");
  flightrec::event("flightrec.probe", 42);

  const JsonValue doc = dump_and_parse("spans");
  EXPECT_EQ(doc.string_or("kind", ""), "postmortem");
  EXPECT_EQ(doc.string_or("reason", ""), "test");
  EXPECT_EQ(doc.number_or("signal", -1.0), 0.0);
  ASSERT_NE(doc.find("provenance"), nullptr);
  ASSERT_NE(doc.find("metrics"), nullptr);

  const JsonValue* self = own_thread(doc);
  ASSERT_NE(self, nullptr);
  EXPECT_TRUE(self->at("dumping").as_bool());
  const auto& spans = self->at("active_spans").as_array();
  ASSERT_GE(spans.size(), 2u);
  // Innermost frames sit at the top of the stack, whatever the tests before
  // this one left below them.
  EXPECT_EQ(spans[spans.size() - 2].as_string(), "flightrec.outer");
  EXPECT_EQ(spans[spans.size() - 1].as_string(), "flightrec.inner");

  bool saw_probe = false;
  for (const JsonValue& r : self->at("records").as_array()) {
    if (r.string_or("name", "") == "flightrec.probe") {
      saw_probe = true;
      EXPECT_EQ(r.string_or("type", ""), "event");
      EXPECT_EQ(r.number_or("arg", -1.0), 42.0);
    }
  }
  EXPECT_TRUE(saw_probe);

  flightrec::span_end();
  flightrec::span_end();
  const JsonValue after = dump_and_parse("spans_popped");
  const JsonValue* self_after = own_thread(after);
  ASSERT_NE(self_after, nullptr);
  EXPECT_EQ(self_after->at("active_spans").as_array().size(),
            spans.size() - 2);
}

TEST(FlightRecTest, RingRetainsExactlyTheLastRecords) {
  for (std::uint64_t i = 0; i < flightrec::kRingCapacity + 32; ++i) {
    flightrec::event("flightrec.ring", i);
  }
  const JsonValue doc = dump_and_parse("ring");
  const JsonValue* self = own_thread(doc);
  ASSERT_NE(self, nullptr);
  const auto& records = self->at("records").as_array();
  ASSERT_EQ(records.size(), flightrec::kRingCapacity);
  // Everything older was evicted: the window is [32, capacity+32), oldest
  // first, and the sequence numbers are strictly increasing.
  EXPECT_EQ(records.front().number_or("arg", -1.0), 32.0);
  EXPECT_EQ(records.back().number_or("arg", -1.0),
            static_cast<double>(flightrec::kRingCapacity + 31));
  double prev_seq = -1.0;
  for (const JsonValue& r : records) {
    EXPECT_GT(r.number_or("seq", -1.0), prev_seq);
    prev_seq = r.number_or("seq", -1.0);
  }
}

TEST(FlightRecTest, RecordsEvenWhenTracingIsDisabled) {
  TraceRecorder::instance().set_enabled(false);
  {
    TraceSpan span("flightrec.alwayson", "test");
  }
  const JsonValue doc = dump_and_parse("alwayson");
  const JsonValue* self = own_thread(doc);
  ASSERT_NE(self, nullptr);
  bool saw_begin = false;
  bool saw_end = false;
  for (const JsonValue& r : self->at("records").as_array()) {
    if (r.string_or("name", "") != "flightrec.alwayson") continue;
    if (r.string_or("type", "") == "span_begin") saw_begin = true;
    if (r.string_or("type", "") == "span_end") saw_end = true;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(FlightRecTest, PoolWorkersAreNamed) {
  // A worker names itself (ring + OS) before it runs any chunk, and region
  // completion synchronizes with the caller, so once a foreign thread id
  // shows up in the body its name is safely readable here.  The calling
  // thread participates too, so retry until a pool thread claims a chunk.
  const std::uint32_t self = flightrec::thread_id();
  std::atomic<std::uint32_t> worker{flightrec::kOverflowThreadId};
  parallel::ForOptions opts;
  opts.jobs = 4;
  for (int attempt = 0;
       attempt < 10 && worker.load() == flightrec::kOverflowThreadId;
       ++attempt) {
    parallel::parallel_for_indexed(
        64,
        [&](std::size_t) {
          // Give the pool threads time to wake and claim chunks — with an
          // empty body the caller drains the whole region before the
          // condition-variable wakeup lands.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          const std::uint32_t id = flightrec::thread_id();
          if (id != self && id != flightrec::kOverflowThreadId) {
            worker.store(id, std::memory_order_relaxed);
          }
        },
        opts);
  }
  const std::uint32_t id = worker.load();
  ASSERT_NE(id, flightrec::kOverflowThreadId) << "no pool thread ran a chunk";
  EXPECT_EQ(std::string(flightrec::thread_name(id)).rfind("uld3d-wk", 0), 0u);
}

TEST(FlightRecTest, PostmortemJoinsTheRunId) {
  RunContext ctx;
  ctx.run_id = "flightrec-test-run";
  set_current_run_context(ctx);
  const JsonValue doc = dump_and_parse("runid");
  EXPECT_EQ(doc.string_or("run", ""), "flightrec-test-run");
  set_current_run_context(RunContext{});
}

}  // namespace
}  // namespace uld3d

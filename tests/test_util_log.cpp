#include "uld3d/util/log.hpp"

#include <gtest/gtest.h>

namespace uld3d {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarning); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, SuppressedMessagesDoNotReachStderr) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("should be suppressed");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, PassingMessagesReachStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello world");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("hello world"), std::string::npos);
  EXPECT_NE(captured.find("INFO"), std::string::npos);
}

TEST_F(LogTest, ThresholdFiltersLowerLevels) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_debug("d");
  log_info("i");
  log_warning("w");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace uld3d

#include "uld3d/util/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace uld3d {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::kWarning);
    set_log_timestamps(false);
  }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, SuppressedMessagesDoNotReachStderr) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("should be suppressed");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, PassingMessagesReachStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello world");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("hello world"), std::string::npos);
  EXPECT_NE(captured.find("INFO"), std::string::npos);
}

TEST_F(LogTest, TimestampsToggleOnAndOff) {
  set_log_level(LogLevel::kInfo);
  EXPECT_FALSE(log_timestamps());
  set_log_timestamps(true);
  EXPECT_TRUE(log_timestamps());

  ::testing::internal::CaptureStderr();
  log_info("stamped");
  const std::string stamped = ::testing::internal::GetCapturedStderr();
  // Prefix carries an HH:MM:SS.mmm wall-clock field.
  EXPECT_TRUE(std::regex_search(
      stamped, std::regex(R"(\d{2}:\d{2}:\d{2}\.\d{3})")))
      << stamped;

  set_log_timestamps(false);
  ::testing::internal::CaptureStderr();
  log_info("plain");
  const std::string plain = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(std::regex_search(
      plain, std::regex(R"(\d{2}:\d{2}:\d{2}\.\d{3})")))
      << plain;
}

TEST_F(LogTest, ConcurrentMessagesNeverInterleaveMidLine) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_info("thread-" + std::to_string(t) + "-msg-" + std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // Every line is one complete message: a prefix, one payload, nothing glued.
  std::istringstream stream(captured);
  std::string line;
  int lines = 0;
  const std::regex whole_line(R"(^\[uld3d INFO\] thread-\d+-msg-\d+$)");
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_TRUE(std::regex_match(line, whole_line)) << "garbled line: " << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

TEST_F(LogTest, ThresholdFiltersLowerLevels) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_debug("d");
  log_info("i");
  log_warning("w");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace uld3d

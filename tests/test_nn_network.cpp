#include "uld3d/nn/network.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {
namespace {

Network tiny() {
  std::vector<Layer> layers;
  layers.push_back(make_conv("c1", 8, 3, 4, 4, 3, 3));
  layers.push_back(make_pool("p1", 8, 2, 2, 2, 2, 2));
  layers.push_back(make_fc("fc", 10, 32));
  return Network("tiny", std::move(layers));
}

TEST(Network, RejectsEmpty) {
  EXPECT_THROW(Network("empty", {}), PreconditionError);
}

TEST(Network, TotalsSumOverLayers) {
  const Network net = tiny();
  std::int64_t ops = 0;
  std::int64_t macs = 0;
  std::int64_t weights = 0;
  for (const auto& l : net.layers()) {
    ops += l.ops();
    macs += l.macs();
    weights += l.weight_count();
  }
  EXPECT_EQ(net.total_ops(), ops);
  EXPECT_EQ(net.total_macs(), macs);
  EXPECT_EQ(net.total_weights(), weights);
  EXPECT_EQ(net.total_weight_bits(8), 8 * weights);
}

TEST(Network, LayerAccessByIndex) {
  const Network net = tiny();
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.layer(0).name(), "c1");
  EXPECT_EQ(net.layer(2).name(), "fc");
  EXPECT_THROW(net.layer(3), PreconditionError);
}

TEST(Network, PeakActivationIsMaxOverLayers) {
  const Network net = tiny();
  std::int64_t peak = 0;
  for (const auto& l : net.layers()) {
    peak = std::max(peak, l.input_bits(8) + l.output_bits(8));
  }
  EXPECT_EQ(net.peak_activation_bits(8), peak);
  EXPECT_GT(peak, 0);
}

TEST(Network, NamePreserved) { EXPECT_EQ(tiny().name(), "tiny"); }

}  // namespace
}  // namespace uld3d::nn

#include "uld3d/sim/network_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/pdk.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/simd.hpp"

namespace uld3d::sim {
namespace {

AcceleratorConfig cfg(std::int64_t n_cs) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  return n_cs == 1 ? AcceleratorConfig::baseline_2d(pdk)
                   : AcceleratorConfig::m3d_design(pdk, n_cs);
}

TEST(NetworkSim, TotalsSumOverLayers) {
  const nn::Network net = nn::make_resnet18();
  const NetworkResult r = simulate_network(net, cfg(1));
  ASSERT_EQ(r.layers.size(), net.size());
  std::int64_t cycles = 0;
  double energy = 0.0;
  for (const auto& l : r.layers) {
    cycles += l.cycles;
    energy += l.energy_pj;
  }
  EXPECT_EQ(r.total_cycles, cycles);
  EXPECT_NEAR(r.total_energy_pj, energy, 1e-3);
  EXPECT_DOUBLE_EQ(r.edp(), r.total_energy_pj * static_cast<double>(cycles));
}

TEST(NetworkSim, ComparisonRowsMatchRuns) {
  const nn::Network net = nn::make_resnet18();
  const DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  ASSERT_EQ(cmp.layers.size(), net.size());
  for (std::size_t i = 0; i < cmp.layers.size(); ++i) {
    EXPECT_EQ(cmp.layers[i].cycles_2d, cmp.run_2d.layers[i].cycles);
    EXPECT_EQ(cmp.layers[i].cycles_3d, cmp.run_3d.layers[i].cycles);
    EXPECT_NEAR(cmp.layers[i].speedup,
                static_cast<double>(cmp.layers[i].cycles_2d) /
                    static_cast<double>(cmp.layers[i].cycles_3d),
                1e-12);
  }
  EXPECT_NEAR(cmp.edp_benefit, cmp.speedup / cmp.energy_ratio, 1e-9);
}

TEST(NetworkSim, MergeRowsCombinesCyclesAndEnergy) {
  const nn::Network net = nn::make_resnet18();
  DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  const std::size_t before = cmp.layers.size();
  const auto conv1 = cmp.layers[0];
  const auto pool1 = cmp.layers[1];
  merge_rows(cmp, "CONV1", "POOL1", "CONV1+POOL");
  EXPECT_EQ(cmp.layers.size(), before - 1);
  const auto& merged = cmp.layers[0];
  EXPECT_EQ(merged.name, "CONV1+POOL");
  EXPECT_EQ(merged.cycles_2d, conv1.cycles_2d + pool1.cycles_2d);
  EXPECT_EQ(merged.cycles_3d, conv1.cycles_3d + pool1.cycles_3d);
  // The merged speedup interpolates the two rows.
  EXPECT_GT(merged.speedup, std::min(conv1.speedup, pool1.speedup));
  EXPECT_LT(merged.speedup, std::max(conv1.speedup, pool1.speedup));
}

TEST(NetworkSim, MergeUnknownRowsThrows) {
  const nn::Network net = nn::make_resnet18();
  DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  EXPECT_THROW(merge_rows(cmp, "CONV1", "NOPE", "X"), PreconditionError);
}

TEST(NetworkSim, MoreCssNeverSlower) {
  const nn::Network net = nn::make_resnet18();
  const NetworkResult r1 = simulate_network(net, cfg(1));
  const NetworkResult r4 = simulate_network(net, cfg(4));
  const NetworkResult r8 = simulate_network(net, cfg(8));
  EXPECT_LT(r8.total_cycles, r4.total_cycles);
  EXPECT_LT(r4.total_cycles, r1.total_cycles);
}

bool sim_bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

TEST(NetworkSim, BatchedEnergyFinishingIsByteIdenticalToPerLayer) {
  // simulate_network's batched finish_energy_batch (AVX2 or forced scalar)
  // must reproduce the seed per-layer simulate_layer results bitwise.
  const nn::Network net = nn::make_resnet18();
  const AcceleratorConfig config = cfg(8);

  std::vector<LayerResult> ref;
  ref.reserve(net.size());
  std::int64_t ref_cycles = 0;
  double ref_energy = 0.0;
  for (const nn::Layer& layer : net.layers()) {
    ref.push_back(simulate_layer(layer, config));
    ref_cycles += ref.back().cycles;
    ref_energy += ref.back().energy_pj;
  }

  for (const bool force_scalar : {false, true}) {
    simd::set_force_scalar(force_scalar);
    const NetworkResult got = simulate_network(net, config);
    simd::set_force_scalar(false);
    ASSERT_EQ(got.layers.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const LayerResult& a = got.layers[i];
      const LayerResult& b = ref[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.cycles, b.cycles);
      EXPECT_EQ(a.cs_used, b.cs_used);
      EXPECT_EQ(a.memory_bound, b.memory_bound);
      EXPECT_TRUE(sim_bits_equal(a.compute_cycles, b.compute_cycles));
      EXPECT_TRUE(sim_bits_equal(a.memory_cycles, b.memory_cycles));
      EXPECT_TRUE(sim_bits_equal(a.energy_pj, b.energy_pj));
      EXPECT_TRUE(sim_bits_equal(a.compute_energy_pj, b.compute_energy_pj));
      EXPECT_TRUE(sim_bits_equal(a.memory_energy_pj, b.memory_energy_pj));
      EXPECT_TRUE(sim_bits_equal(a.idle_energy_pj, b.idle_energy_pj));
      EXPECT_TRUE(sim_bits_equal(a.utilization, b.utilization));
    }
    EXPECT_EQ(got.total_cycles, ref_cycles);
    EXPECT_TRUE(sim_bits_equal(got.total_energy_pj, ref_energy))
        << "force_scalar=" << force_scalar;
  }
}

TEST(NetworkSim, EnergyRatioNearUnity) {
  // The headline iso-energy property: M3D spends ~0.97-1.0x the 2D energy.
  for (const char* name : {"alexnet", "resnet18", "vgg16"}) {
    const nn::Network net = nn::make_network(name);
    const DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
    EXPECT_GT(cmp.energy_ratio, 0.95) << name;
    EXPECT_LT(cmp.energy_ratio, 1.02) << name;
  }
}

}  // namespace
}  // namespace uld3d::sim

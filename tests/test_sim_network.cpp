#include "uld3d/sim/network_sim.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/pdk.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::sim {
namespace {

AcceleratorConfig cfg(std::int64_t n_cs) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  return n_cs == 1 ? AcceleratorConfig::baseline_2d(pdk)
                   : AcceleratorConfig::m3d_design(pdk, n_cs);
}

TEST(NetworkSim, TotalsSumOverLayers) {
  const nn::Network net = nn::make_resnet18();
  const NetworkResult r = simulate_network(net, cfg(1));
  ASSERT_EQ(r.layers.size(), net.size());
  std::int64_t cycles = 0;
  double energy = 0.0;
  for (const auto& l : r.layers) {
    cycles += l.cycles;
    energy += l.energy_pj;
  }
  EXPECT_EQ(r.total_cycles, cycles);
  EXPECT_NEAR(r.total_energy_pj, energy, 1e-3);
  EXPECT_DOUBLE_EQ(r.edp(), r.total_energy_pj * static_cast<double>(cycles));
}

TEST(NetworkSim, ComparisonRowsMatchRuns) {
  const nn::Network net = nn::make_resnet18();
  const DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  ASSERT_EQ(cmp.layers.size(), net.size());
  for (std::size_t i = 0; i < cmp.layers.size(); ++i) {
    EXPECT_EQ(cmp.layers[i].cycles_2d, cmp.run_2d.layers[i].cycles);
    EXPECT_EQ(cmp.layers[i].cycles_3d, cmp.run_3d.layers[i].cycles);
    EXPECT_NEAR(cmp.layers[i].speedup,
                static_cast<double>(cmp.layers[i].cycles_2d) /
                    static_cast<double>(cmp.layers[i].cycles_3d),
                1e-12);
  }
  EXPECT_NEAR(cmp.edp_benefit, cmp.speedup / cmp.energy_ratio, 1e-9);
}

TEST(NetworkSim, MergeRowsCombinesCyclesAndEnergy) {
  const nn::Network net = nn::make_resnet18();
  DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  const std::size_t before = cmp.layers.size();
  const auto conv1 = cmp.layers[0];
  const auto pool1 = cmp.layers[1];
  merge_rows(cmp, "CONV1", "POOL1", "CONV1+POOL");
  EXPECT_EQ(cmp.layers.size(), before - 1);
  const auto& merged = cmp.layers[0];
  EXPECT_EQ(merged.name, "CONV1+POOL");
  EXPECT_EQ(merged.cycles_2d, conv1.cycles_2d + pool1.cycles_2d);
  EXPECT_EQ(merged.cycles_3d, conv1.cycles_3d + pool1.cycles_3d);
  // The merged speedup interpolates the two rows.
  EXPECT_GT(merged.speedup, std::min(conv1.speedup, pool1.speedup));
  EXPECT_LT(merged.speedup, std::max(conv1.speedup, pool1.speedup));
}

TEST(NetworkSim, MergeUnknownRowsThrows) {
  const nn::Network net = nn::make_resnet18();
  DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
  EXPECT_THROW(merge_rows(cmp, "CONV1", "NOPE", "X"), PreconditionError);
}

TEST(NetworkSim, MoreCssNeverSlower) {
  const nn::Network net = nn::make_resnet18();
  const NetworkResult r1 = simulate_network(net, cfg(1));
  const NetworkResult r4 = simulate_network(net, cfg(4));
  const NetworkResult r8 = simulate_network(net, cfg(8));
  EXPECT_LT(r8.total_cycles, r4.total_cycles);
  EXPECT_LT(r4.total_cycles, r1.total_cycles);
}

TEST(NetworkSim, EnergyRatioNearUnity) {
  // The headline iso-energy property: M3D spends ~0.97-1.0x the 2D energy.
  for (const char* name : {"alexnet", "resnet18", "vgg16"}) {
    const nn::Network net = nn::make_network(name);
    const DesignComparison cmp = compare_designs(net, cfg(1), cfg(8));
    EXPECT_GT(cmp.energy_ratio, 0.95) << name;
    EXPECT_LT(cmp.energy_ratio, 1.02) << name;
  }
}

}  // namespace
}  // namespace uld3d::sim

// Cross-model consistency: the library contains several independent views
// of the same physics (analytical Eq. 1-8, Gables roofline, the cycle
// simulator, the structural netlist, the folding baseline).  These tests
// pin the relations BETWEEN them, which is where modeling bugs hide.
#include <gtest/gtest.h>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/accel/chip_summary.hpp"
#include "uld3d/accel/cs_netlist.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/folding.hpp"
#include "uld3d/core/roofline.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/sim/systolic_trace.hpp"
#include "uld3d/sim/tiling.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d {
namespace {

TEST(CrossModel, RooflineReproducesAnalyticalTimes) {
  // core::Roofline::execution_time_cycles IS Eq. 1; they must agree on any
  // workload and chip.
  const accel::CaseStudy study;
  const core::Chip2d c2 = study.chip2d_params();
  const core::Roofline roof{c2.peak_ops_per_cycle, c2.bandwidth_bits_per_cycle};
  for (const double intensity : {0.01, 0.5, 2.0, 50.0}) {
    const auto w = core::synthetic_workload(intensity, 1.0e8, 8);
    EXPECT_DOUBLE_EQ(roof.execution_time_cycles(w),
                     core::execution_time_2d(w, c2));
  }
}

TEST(CrossModel, GablesHomogeneousMatchesEq4ComputeScaling) {
  // An N-CS Gables SoC with fully-private traffic equals Eq. 4's compute
  // scaling for compute-bound workloads.
  const accel::CaseStudy study;
  const core::Chip2d c2 = study.chip2d_params();
  const core::Chip3d c3 = study.chip3d_params();
  core::WorkloadPoint w = core::synthetic_workload(256.0, 1.0e8, 64);
  w.d0_shared_bits = 0.0;
  const core::Roofline per_cs{c2.peak_ops_per_cycle,
                              c2.bandwidth_bits_per_cycle};
  const auto soc = core::GablesSoc::homogeneous(
      c3.parallel_cs, per_cs, c3.bandwidth_bits_per_cycle);
  EXPECT_NEAR(soc.execution_time_cycles(w),
              core::execution_time_3d(w, c2, c3), 1.0);
}

TEST(CrossModel, MicroSimValidatesTilePlanStreaming) {
  // The network simulator charges max(load, stream) + sync per tile; the
  // cycle-accurate wavefront gives stream + fill + drain.  For a 16x16 tile
  // the micro-sim total must sit between "stream only" and "stream + sync
  // budget" used by the tile plan.
  const sim::ArrayConfig arr;
  const auto problem = sim::TileProblem::make_example(arr.rows, arr.cols, 784);
  const auto trace = sim::simulate_tile(problem);
  EXPECT_GT(trace.total_cycles, 784);
  EXPECT_LE(trace.total_cycles, 784 + 2 * arr.tile_sync_cycles);
}

TEST(CrossModel, NetlistLeakageSupportsIdleEnergyCalibration) {
  // The simulator charges ~2 pJ/cycle of CS idle energy; the structural
  // netlist's leakage at 50 ns per cycle must be the same order (the PE
  // array is most of the CS).
  const accel::CaseStudy study;
  const auto netlist =
      accel::build_cs_array_netlist(study.cs, accel::PeStructure{});
  const double leak_mw =
      netlist.leakage_nw(study.pdk.si_library()) * 1.0e-6;
  const double pj_per_cycle = leak_mw * study.pdk.clock_period_ns();
  const double charged = study.config_2d().memory.cs_idle_pj_per_cycle;
  EXPECT_GT(pj_per_cycle, 0.1 * charged);
  EXPECT_LT(pj_per_cycle, 30.0 * charged);
}

TEST(CrossModel, FoldingNeverBeatsArchitecturalDesignPoints) {
  // The paper's framing holds at EVERY zoo model: folding's ceiling is far
  // below the architectural benefit.
  const accel::CaseStudy study;
  const double folding = core::evaluate_folding({}).edp_benefit;
  for (const char* name : {"alexnet", "vgg16", "resnet18", "resnet152"}) {
    const double architectural =
        study.run(nn::make_network(name)).edp_benefit;
    EXPECT_GT(architectural, 3.0 * folding) << name;
  }
}

TEST(CrossModel, PaperEq2MatchesPlacerCapacity) {
  // Eq. 2's N (area arithmetic) and the placer's achieved CS count (the
  // geometric reality) must agree for the case study.
  const accel::CaseStudy study;
  const auto input = accel::derive_flow_input(study, nn::make_resnet18(), true);
  const phys::M3dFlow flow;
  const auto r2 = flow.run_design(input, false, 1);
  const auto r3 = flow.run_design(input, true, study.m3d_cs_count(),
                                  r2.die_width_um, r2.die_height_um);
  EXPECT_TRUE(r3.feasible);
  EXPECT_EQ(r3.cs_placed, study.m3d_cs_count());
}

}  // namespace
}  // namespace uld3d

#include "uld3d/core/edp_model.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

Chip2d chip2d() {
  Chip2d c;
  c.bandwidth_bits_per_cycle = 256.0;
  c.peak_ops_per_cycle = 512.0;
  c.alpha_pj_per_bit = 1.5;
  c.compute_pj_per_op = 1.0;
  c.cs_idle_pj_per_cycle = 2.0;
  c.mem_idle_pj_per_cycle = 10.0;
  return c;
}

Chip3d chip3d(std::int64_t n) {
  Chip3d c;
  c.parallel_cs = n;
  c.bandwidth_bits_per_cycle = 256.0 * static_cast<double>(n);
  c.alpha_pj_per_bit = 1.5 * 0.97;
  c.mem_idle_pj_per_cycle = 10.0;
  return c;
}

TEST(Eq1, RooflineMax) {
  const Chip2d c = chip2d();
  // Memory-bound: D0/B > F0/P.
  WorkloadPoint mem = synthetic_workload(0.5, 256000.0, 8);
  EXPECT_DOUBLE_EQ(execution_time_2d(mem, c), 1000.0);
  // Compute-bound: F0/P > D0/B.
  WorkloadPoint cmp = synthetic_workload(64.0, 256000.0, 8);
  EXPECT_DOUBLE_EQ(execution_time_2d(cmp, c), 64.0 * 256000.0 / 512.0);
}

TEST(Eq4, PaperLiteralFormWhenFullyShared) {
  // With everything shared (default), D0*N/B_3D = D0/B per-bank: memory time
  // is identical to 2D regardless of N.
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(0.5, 256000.0, 64);
  EXPECT_DOUBLE_EQ(execution_time_3d(w, c2, chip3d(1)),
                   execution_time_3d(w, c2, chip3d(8)));
  EXPECT_DOUBLE_EQ(execution_time_3d(w, c2, chip3d(8)),
                   execution_time_2d(w, c2));
}

TEST(Eq4, ComputeTimeScalesWithNmax) {
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(64.0, 256000.0, 64);
  const double t1 = execution_time_3d(w, c2, chip3d(1));
  const double t8 = execution_time_3d(w, c2, chip3d(8));
  EXPECT_NEAR(t1 / t8, 8.0, 1e-9);
}

TEST(Eq4, NmaxCapsAtWorkloadPartitions) {
  const Chip2d c2 = chip2d();
  WorkloadPoint w = synthetic_workload(64.0, 256000.0, 4);  // N# = 4
  const double t4 = execution_time_3d(w, c2, chip3d(4));
  const double t16 = execution_time_3d(w, c2, chip3d(16));
  EXPECT_DOUBLE_EQ(t4, t16);  // extra CSs are useless beyond N#
}

TEST(Eq4, PrivateTrafficSplitsAcrossPartitions) {
  const Chip2d c2 = chip2d();
  WorkloadPoint w = synthetic_workload(0.5, 256000.0, 64);
  w.d0_shared_bits = 0.0;  // fully private (e.g. weight-only traffic)
  const double t1 = execution_time_3d(w, c2, chip3d(1));
  const double t8 = execution_time_3d(w, c2, chip3d(8));
  EXPECT_NEAR(t1 / t8, 8.0, 1e-9);
}

TEST(Eq5, SpeedupIsRatioOfTimes) {
  const Chip2d c2 = chip2d();
  const Chip3d c3 = chip3d(8);
  const WorkloadPoint w = synthetic_workload(64.0, 256000.0, 64);
  const EdpResult r = evaluate_edp(w, c2, c3);
  EXPECT_DOUBLE_EQ(r.speedup, r.t2d_cycles / r.t3d_cycles);
  EXPECT_NEAR(r.speedup, 8.0, 1e-9);
}

TEST(Eq6, EnergyComponentsAddUp) {
  const Chip2d c = chip2d();
  const WorkloadPoint w = synthetic_workload(64.0, 256000.0, 8);
  const double t = execution_time_2d(w, c);
  const double expected =
      c.alpha_pj_per_bit * w.d0_bits +
      c.mem_idle_pj_per_cycle * (t - w.d0_bits / c.bandwidth_bits_per_cycle) +
      c.cs_idle_pj_per_cycle * (t - w.f0_ops / c.peak_ops_per_cycle) +
      c.compute_pj_per_op * w.f0_ops;
  EXPECT_DOUBLE_EQ(energy_2d(w, c), expected);
}

TEST(Eq7, ReducesToEq6WhenNIsOne) {
  const Chip2d c2 = chip2d();
  Chip3d c3 = chip3d(1);
  c3.alpha_pj_per_bit = c2.alpha_pj_per_bit;
  c3.mem_idle_pj_per_cycle = c2.mem_idle_pj_per_cycle;
  const WorkloadPoint w = synthetic_workload(16.0, 256000.0, 8);
  EXPECT_NEAR(energy_3d(w, c2, c3), energy_2d(w, c2), 1e-9);
}

TEST(Eq7, UnusedCssChargeIdleEnergy) {
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(64.0, 256000.0, 4);  // N# = 4
  // 16 CSs but only 4 usable: 12 idle the whole time.
  const double e4 = energy_3d(w, c2, chip3d(4));
  const double e16 = energy_3d(w, c2, chip3d(16));
  EXPECT_GT(e16, e4);
}

TEST(Eq8, EdpBenefitComposition) {
  const Chip2d c2 = chip2d();
  const Chip3d c3 = chip3d(8);
  const WorkloadPoint w = synthetic_workload(64.0, 256000.0, 64);
  const EdpResult r = evaluate_edp(w, c2, c3);
  EXPECT_DOUBLE_EQ(r.edp_benefit, r.speedup * (r.e2d_pj / r.e3d_pj));
  EXPECT_DOUBLE_EQ(r.energy_ratio, r.e2d_pj / r.e3d_pj);
  EXPECT_EQ(r.n_max, 8);
}

TEST(CombineResults, SumsAndRecomputes) {
  const Chip2d c2 = chip2d();
  const Chip3d c3 = chip3d(8);
  const WorkloadPoint a = synthetic_workload(64.0, 256000.0, 64);
  const WorkloadPoint b = synthetic_workload(2.0, 512000.0, 4);
  const EdpResult ra = evaluate_edp(a, c2, c3);
  const EdpResult rb = evaluate_edp(b, c2, c3);
  const EdpResult total = combine_results({ra, rb});
  EXPECT_DOUBLE_EQ(total.t2d_cycles, ra.t2d_cycles + rb.t2d_cycles);
  EXPECT_DOUBLE_EQ(total.e3d_pj, ra.e3d_pj + rb.e3d_pj);
  EXPECT_DOUBLE_EQ(total.speedup, total.t2d_cycles / total.t3d_cycles);
  // The combined speedup lies between the per-layer speedups.
  EXPECT_GE(total.speedup, std::min(ra.speedup, rb.speedup));
  EXPECT_LE(total.speedup, std::max(ra.speedup, rb.speedup));
}

TEST(CombineResults, EmptyThrows) {
  EXPECT_THROW(combine_results({}), PreconditionError);
}

TEST(Validation, RejectsBadChips) {
  const WorkloadPoint w = synthetic_workload(1.0, 1.0e6, 1);
  Chip2d bad = chip2d();
  bad.bandwidth_bits_per_cycle = 0.0;
  EXPECT_THROW(execution_time_2d(w, bad), PreconditionError);
  Chip3d bad3 = chip3d(0);
  EXPECT_THROW(execution_time_3d(w, chip2d(), bad3), PreconditionError);
}

}  // namespace
}  // namespace uld3d::core

// Property-based sweeps over the analytical EDP framework: invariants that
// must hold at EVERY design point, not just the paper's.
#include <gtest/gtest.h>

#include <tuple>

#include "uld3d/core/edp_model.hpp"

namespace uld3d::core {
namespace {

Chip2d chip2d() {
  Chip2d c;
  c.bandwidth_bits_per_cycle = 256.0;
  c.peak_ops_per_cycle = 512.0;
  c.alpha_pj_per_bit = 1.5;
  c.compute_pj_per_op = 1.0;
  c.cs_idle_pj_per_cycle = 2.0;
  c.mem_idle_pj_per_cycle = 10.0;
  return c;
}

Chip3d chip3d(std::int64_t n, double bw_scale = 1.0) {
  Chip3d c;
  c.parallel_cs = n;
  c.bandwidth_bits_per_cycle = 256.0 * bw_scale * static_cast<double>(n);
  c.alpha_pj_per_bit = 1.5 * 0.97;
  c.mem_idle_pj_per_cycle = 10.0 * (1.0 + 0.3 * static_cast<double>(n - 1));
  return c;
}

// (ops/bit intensity, N#, N, bandwidth scale)
using Point = std::tuple<double, std::int64_t, std::int64_t, double>;

class EdpProperty : public ::testing::TestWithParam<Point> {
 protected:
  [[nodiscard]] WorkloadPoint workload() const {
    const auto [intensity, nsharp, n, bw] = GetParam();
    (void)n;
    (void)bw;
    return synthetic_workload(intensity, 8.0 * 1024.0 * 1024.0, nsharp);
  }
  [[nodiscard]] Chip3d m3d() const {
    const auto [intensity, nsharp, n, bw] = GetParam();
    (void)intensity;
    (void)nsharp;
    return chip3d(n, bw);
  }
};

TEST_P(EdpProperty, TimesAndEnergiesArePositive) {
  const EdpResult r = evaluate_edp(workload(), chip2d(), m3d());
  EXPECT_GT(r.t2d_cycles, 0.0);
  EXPECT_GT(r.t3d_cycles, 0.0);
  EXPECT_GT(r.e2d_pj, 0.0);
  EXPECT_GT(r.e3d_pj, 0.0);
  EXPECT_GT(r.edp_benefit, 0.0);
}

TEST_P(EdpProperty, SpeedupNeverExceedsNmax) {
  const WorkloadPoint w = workload();
  const Chip3d c3 = m3d();
  const auto [intensity, nsharp, n, bw] = GetParam();
  (void)intensity;
  const EdpResult r = evaluate_edp(w, chip2d(), c3);
  const double nmax = static_cast<double>(std::min(nsharp, n));
  // Compute scales at most Nmax-fold; memory at most bw-fold; the combined
  // speedup cannot beat the better of the two.
  EXPECT_LE(r.speedup, std::max(nmax, bw) + 1e-9);
  EXPECT_EQ(r.n_max, std::min(nsharp, n));
}

TEST_P(EdpProperty, SpeedupAtLeastOneWithIsoBandwidthPerCs) {
  const auto [intensity, nsharp, n, bw] = GetParam();
  if (bw < 1.0) return;  // degraded per-CS bandwidth may slow memory phases
  (void)intensity;
  (void)nsharp;
  const EdpResult r = evaluate_edp(workload(), chip2d(), m3d());
  EXPECT_GE(r.speedup, 1.0 - 1e-9);
}

TEST_P(EdpProperty, MoreCsNeverSlowsDown) {
  const auto [intensity, nsharp, n, bw] = GetParam();
  (void)intensity;
  (void)nsharp;
  const WorkloadPoint w = workload();
  const double t_n = execution_time_3d(w, chip2d(), chip3d(n, bw));
  const double t_2n = execution_time_3d(w, chip2d(), chip3d(2 * n, bw));
  EXPECT_LE(t_2n, t_n + 1e-9);
}

TEST_P(EdpProperty, EnergyRatioApproachesOneWithoutIdleTerms) {
  // With idle energies and the alpha derate removed, E_3D == E_2D exactly:
  // the same work is done either way (paper's E_C,3D = E_C,2D premise).
  Chip2d c2 = chip2d();
  c2.cs_idle_pj_per_cycle = 0.0;
  c2.mem_idle_pj_per_cycle = 0.0;
  Chip3d c3 = m3d();
  c3.alpha_pj_per_bit = c2.alpha_pj_per_bit;
  c3.mem_idle_pj_per_cycle = 0.0;
  const WorkloadPoint w = workload();
  EXPECT_NEAR(energy_3d(w, c2, c3) / energy_2d(w, c2), 1.0, 1e-12);
}

TEST_P(EdpProperty, EdpBenefitEqualsSpeedupTimesEnergyRatio) {
  const EdpResult r = evaluate_edp(workload(), chip2d(), m3d());
  EXPECT_NEAR(r.edp_benefit, r.speedup * r.energy_ratio, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, EdpProperty,
    ::testing::Combine(::testing::Values(1.0 / 16.0, 1.0, 4.0, 16.0, 256.0),
                       ::testing::Values<std::int64_t>(1, 4, 32),
                       ::testing::Values<std::int64_t>(1, 2, 8, 16),
                       ::testing::Values(0.5, 1.0, 2.0)));

}  // namespace
}  // namespace uld3d::core

#include "uld3d/util/fault.hpp"

#include <gtest/gtest.h>

namespace uld3d {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, UnarmedSitesAreInert) {
  EXPECT_FALSE(FaultInjector::instance().armed());
  EXPECT_NO_THROW(fault_site("core.edp.evaluate"));
  EXPECT_EQ(FaultInjector::instance().hit_count("core.edp.evaluate"), 0u);
}

TEST_F(FaultInjectorTest, ArmedSiteThrowsItsFailure) {
  FaultInjector::instance().arm(
      "core.edp.evaluate",
      Failure(ErrorCode::kNumericalError, "injected nan"));
  try {
    fault_site("core.edp.evaluate");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNumericalError);
    EXPECT_EQ(error.failure().message, "injected nan");
  }
}

TEST_F(FaultInjectorTest, SkipAndCountControlWhichHitsFail) {
  // Skip 2 passing hits, then fail exactly 2.
  FaultInjector::instance().arm("site",
                                Failure(ErrorCode::kThermalLimit, "boom"),
                                /*skip=*/2, /*count=*/2);
  EXPECT_NO_THROW(fault_site("site"));  // hit 0
  EXPECT_NO_THROW(fault_site("site"));  // hit 1
  EXPECT_THROW(fault_site("site"), StatusError);  // hit 2
  EXPECT_THROW(fault_site("site"), StatusError);  // hit 3
  EXPECT_NO_THROW(fault_site("site"));  // hit 4: plan exhausted
  EXPECT_EQ(FaultInjector::instance().hit_count("site"), 5u);
}

TEST_F(FaultInjectorTest, OtherSitesAreUnaffected) {
  FaultInjector::instance().arm("a", Failure(ErrorCode::kInternal, "x"));
  EXPECT_NO_THROW(fault_site("b"));
  EXPECT_THROW(fault_site("a"), StatusError);
}

TEST_F(FaultInjectorTest, DisarmAndResetClearPlans) {
  auto& injector = FaultInjector::instance();
  injector.arm("a", Failure(ErrorCode::kInternal, "x"));
  injector.arm("b", Failure(ErrorCode::kInternal, "y"));
  injector.disarm("a");
  EXPECT_NO_THROW(fault_site("a"));
  EXPECT_TRUE(injector.armed());
  injector.reset();
  EXPECT_FALSE(injector.armed());
  EXPECT_NO_THROW(fault_site("b"));
}

TEST_F(FaultInjectorTest, RearmReplacesThePlan) {
  auto& injector = FaultInjector::instance();
  injector.arm("s", Failure(ErrorCode::kInternal, "first"));
  injector.arm("s", Failure(ErrorCode::kThermalLimit, "second"));
  try {
    fault_site("s");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kThermalLimit);
  }
}

TEST_F(FaultInjectorTest, ArmFromSpecParsesSiteCodeSkipCount) {
  auto& injector = FaultInjector::instance();
  injector.arm_from_spec("dse.sweep.point=kNumericalError:1:2");
  EXPECT_NO_THROW(fault_site("dse.sweep.point"));  // skipped
  try {
    fault_site("dse.sweep.point");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNumericalError);
  }
  EXPECT_THROW(fault_site("dse.sweep.point"), StatusError);
  EXPECT_NO_THROW(fault_site("dse.sweep.point"));
}

TEST_F(FaultInjectorTest, ArmFromSpecDefaultsAndEdgeCases) {
  auto& injector = FaultInjector::instance();
  injector.arm_from_spec(nullptr);  // no-op
  injector.arm_from_spec("");       // no-op
  EXPECT_FALSE(injector.armed());
  injector.arm_from_spec("site=kBogusCode");  // unknown -> kFaultInjected
  try {
    fault_site("site");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
  }
  EXPECT_THROW(injector.arm_from_spec("missing_equals"), PreconditionError);
}

}  // namespace
}  // namespace uld3d

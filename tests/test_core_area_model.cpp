#include "uld3d/core/area_model.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

AreaModel model(double cs, double cells, double perif = 0.0, double bus = 0.0) {
  AreaModel a;
  a.cs_area_um2 = cs;
  a.mem_cells_area_um2 = cells;
  a.mem_perif_area_um2 = perif;
  a.bus_area_um2 = bus;
  return a;
}

TEST(AreaModel, GammaRatios) {
  const AreaModel a = model(10.0, 70.0, 15.0, 5.0);
  EXPECT_DOUBLE_EQ(a.gamma_cells(), 7.0);
  EXPECT_DOUBLE_EQ(a.gamma_perif(), 1.5);
  EXPECT_DOUBLE_EQ(a.total_area_um2(), 100.0);
}

TEST(AreaModel, Eq2PaperCase) {
  // gamma_cells ~ 7 -> N = 8, the Sec.-II configuration.
  EXPECT_EQ(model(10.0, 70.0).m3d_parallel_cs(), 8);
}

TEST(AreaModel, Eq2FloorSemantics) {
  // A fractional CS cannot be placed: 1 + 6.9 -> 7.
  EXPECT_EQ(model(10.0, 69.0).m3d_parallel_cs(), 7);
  EXPECT_EQ(model(10.0, 69.99).m3d_parallel_cs(), 7);
  EXPECT_EQ(model(10.0, 70.01).m3d_parallel_cs(), 8);
}

TEST(AreaModel, Eq2ExactBoundaryCountsTheCs) {
  // gamma exactly integral places the last CS (epsilon guard).
  EXPECT_EQ(model(10.0, 30.0).m3d_parallel_cs(), 4);
}

TEST(AreaModel, NoFreedAreaMeansOneCs) {
  EXPECT_EQ(model(10.0, 0.0).m3d_parallel_cs(), 1);
  EXPECT_EQ(model(10.0, 5.0).m3d_parallel_cs(), 1);
}

TEST(AreaModel, UsableFractionShrinksN) {
  const AreaModel a = model(10.0, 70.0);
  EXPECT_EQ(a.m3d_parallel_cs(1.0), 8);
  EXPECT_EQ(a.m3d_parallel_cs(0.5), 4);   // 1 + 3.5
  EXPECT_EQ(a.m3d_parallel_cs(0.1), 1);   // 1 + 0.7
}

TEST(AreaModel, UsableFractionValidated) {
  const AreaModel a = model(10.0, 70.0);
  EXPECT_THROW(a.m3d_parallel_cs(0.0), PreconditionError);
  EXPECT_THROW(a.m3d_parallel_cs(1.5), PreconditionError);
}

TEST(AreaModel, ValidationRejectsBadAreas) {
  EXPECT_THROW(model(0.0, 1.0).gamma_cells(), PreconditionError);
  EXPECT_THROW(model(1.0, -1.0).gamma_cells(), PreconditionError);
}

class CapacityScaling : public ::testing::TestWithParam<double> {};

TEST_P(CapacityScaling, NGrowsMonotonicallyWithCellArea) {
  const double scale = GetParam();
  const AreaModel small = model(10.0, 70.0);
  const AreaModel large = model(10.0, 70.0 * scale);
  EXPECT_GE(large.m3d_parallel_cs(), small.m3d_parallel_cs());
  // Linear scaling of gamma (Observation 6's driver).
  EXPECT_NEAR(large.gamma_cells(), small.gamma_cells() * scale, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, CapacityScaling,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace uld3d::core

#include "uld3d/util/export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "uld3d/util/check.hpp"

namespace uld3d {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ULD3D_CSV_DIR"); }

  static Table sample() {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    return t;
  }
};

TEST_F(ExportTest, DisabledByDefault) {
  unsetenv("ULD3D_CSV_DIR");
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "Title", "slug");
  EXPECT_TRUE(path.empty());
  EXPECT_NE(os.str().find("Title"), std::string::npos);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
}

TEST_F(ExportTest, WritesCsvWhenConfigured) {
  setenv("ULD3D_CSV_DIR", testing::TempDir().c_str(), 1);
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "Title", "my_slug");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("my_slug.csv"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a,b");
  std::getline(file, line);
  EXPECT_EQ(line, "1,2");
}

TEST_F(ExportTest, BadDirectoryWarnsButPrints) {
  setenv("ULD3D_CSV_DIR", "/nonexistent/dir/zzz", 1);
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "T", "slug");
  EXPECT_TRUE(path.empty());
  EXPECT_NE(os.str().find("| a"), std::string::npos);  // stdout unaffected
}

TEST_F(ExportTest, EmptySlugRejected) {
  std::ostringstream os;
  EXPECT_THROW(emit_table(os, sample(), "T", ""), PreconditionError);
}

TEST_F(ExportTest, DirAccessorReflectsEnvironment) {
  unsetenv("ULD3D_CSV_DIR");
  EXPECT_TRUE(csv_export_dir().empty());
  setenv("ULD3D_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(csv_export_dir(), "/tmp");
}

// json_escape / csv_escape live in export.hpp (single definition shared by
// metrics, table CSV, and the bench harness).

TEST(JsonEscapeTest, PlainStringUnchanged) {
  EXPECT_EQ(json_escape("hello world_123"), "hello world_123");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, CommonControlCharacters) {
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
}

TEST(JsonEscapeTest, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, NonAsciiBytesPassThrough) {
  // UTF-8 multi-byte sequences are valid inside JSON strings unescaped.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(CsvEscapeTest, PlainFieldUnquoted) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscapeTest, SeparatorsAndQuotesForceQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("he said \"no\""), "\"he said \"\"no\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscapeTest, NonAsciiBytesPassThrough) {
  const std::string utf8 = "\xc3\xbcml\xc3\xa4ut";
  EXPECT_EQ(csv_escape(utf8), utf8);
}

}  // namespace
}  // namespace uld3d

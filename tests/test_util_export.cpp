#include "uld3d/util/export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "uld3d/util/check.hpp"

namespace uld3d {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("ULD3D_CSV_DIR"); }

  static Table sample() {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    return t;
  }
};

TEST_F(ExportTest, DisabledByDefault) {
  unsetenv("ULD3D_CSV_DIR");
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "Title", "slug");
  EXPECT_TRUE(path.empty());
  EXPECT_NE(os.str().find("Title"), std::string::npos);
  EXPECT_NE(os.str().find("| a"), std::string::npos);
}

TEST_F(ExportTest, WritesCsvWhenConfigured) {
  setenv("ULD3D_CSV_DIR", testing::TempDir().c_str(), 1);
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "Title", "my_slug");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("my_slug.csv"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a,b");
  std::getline(file, line);
  EXPECT_EQ(line, "1,2");
}

TEST_F(ExportTest, BadDirectoryWarnsButPrints) {
  setenv("ULD3D_CSV_DIR", "/nonexistent/dir/zzz", 1);
  std::ostringstream os;
  const std::string path = emit_table(os, sample(), "T", "slug");
  EXPECT_TRUE(path.empty());
  EXPECT_NE(os.str().find("| a"), std::string::npos);  // stdout unaffected
}

TEST_F(ExportTest, EmptySlugRejected) {
  std::ostringstream os;
  EXPECT_THROW(emit_table(os, sample(), "T", ""), PreconditionError);
}

TEST_F(ExportTest, DirAccessorReflectsEnvironment) {
  unsetenv("ULD3D_CSV_DIR");
  EXPECT_TRUE(csv_export_dir().empty());
  setenv("ULD3D_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(csv_export_dir(), "/tmp");
}

}  // namespace
}  // namespace uld3d

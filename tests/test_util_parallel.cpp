#include "uld3d/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "uld3d/util/check.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::parallel {
namespace {

/// Every test leaves the global jobs setting as it found it (the default).
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { set_jobs(0); }
  void TearDown() override { set_jobs(0); }
};

TEST_F(ParallelTest, JobsConfigRoundTrip) {
  EXPECT_GE(hardware_concurrency(), 1);
  EXPECT_GE(default_jobs(), 1);
  set_jobs(3);
  EXPECT_EQ(jobs(), 3);
  EXPECT_EQ(resolve_jobs(0), 3);   // 0 falls through to the global
  EXPECT_EQ(resolve_jobs(5), 5);   // explicit override wins
  set_jobs(0);                     // restore the default
  EXPECT_EQ(jobs(), default_jobs());
  EXPECT_THROW(set_jobs(-1), PreconditionError);
  EXPECT_THROW(set_jobs(kMaxJobs + 1), PreconditionError);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for_indexed(
      kN, [&](std::size_t i) { counts[i].fetch_add(1); }, {.jobs = 8});
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST_F(ParallelTest, GrainedChunksStillCoverEveryIndex) {
  constexpr std::size_t kN = 101;  // not a multiple of the grain
  std::vector<std::atomic<int>> counts(kN);
  parallel_for_indexed(
      kN, [&](std::size_t i) { counts[i].fetch_add(1); },
      {.jobs = 8, .grain = 16});
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST_F(ParallelTest, EmptyAndSingleIndexRanges) {
  int calls = 0;
  parallel_for_indexed(0, [&](std::size_t) { ++calls; }, {.jobs = 8});
  EXPECT_EQ(calls, 0);
  std::thread::id body_thread;
  parallel_for_indexed(
      1,
      [&](std::size_t) {
        ++calls;
        body_thread = std::this_thread::get_id();
      },
      {.jobs = 8});
  EXPECT_EQ(calls, 1);
  // A single chunk runs on the calling thread — no pool involvement.
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST_F(ParallelTest, SlotsAssembleInIndexOrder) {
  constexpr std::size_t kN = 512;
  std::vector<std::size_t> slots(kN, 0);
  parallel_for_indexed(
      kN, [&](std::size_t i) { slots[i] = i * i; }, {.jobs = 8});
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(slots[i], i * i);
}

TEST_F(ParallelTest, LowestFailingIndexWinsAtAnyJobsCount) {
  // Bodies throw at 13, 500, and 700: the rethrown exception must always be
  // index 13's — what the serial loop would have thrown first.
  const auto body = [](std::size_t i) {
    if (i == 13 || i == 500 || i == 700) {
      throw StatusError(
          Failure(ErrorCode::kNumericalError, "boom")
              .with("index", static_cast<std::int64_t>(i)));
    }
  };
  for (const int j : {1, 2, 8}) {
    try {
      parallel_for_indexed(800, body, {.jobs = j});
      FAIL() << "expected a StatusError at jobs=" << j;
    } catch (const StatusError& error) {
      ASSERT_EQ(error.failure().context.size(), 1u);
      EXPECT_EQ(error.failure().context[0].second, "13")
          << "wrong failing index surfaced at jobs=" << j;
    }
  }
}

TEST_F(ParallelTest, SerialPathStopsAtFirstThrow) {
  // jobs=1 IS the serial loop: indices after the throw never run.
  std::size_t calls = 0;
  EXPECT_THROW(parallel_for_indexed(
                   100,
                   [&](std::size_t i) {
                     ++calls;
                     if (i == 2) throw StatusError(Failure(
                         ErrorCode::kNumericalError, "boom"));
                   },
                   {.jobs = 1}),
               StatusError);
  EXPECT_EQ(calls, 3u);  // 0, 1, 2 — exactly the serial prefix
}

TEST_F(ParallelTest, NestedRegionsDoNotDeadlock) {
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::size_t> sums(kOuter, 0);
  parallel_for_indexed(
      kOuter,
      [&](std::size_t o) {
        std::vector<std::size_t> inner(kInner, 0);
        parallel_for_indexed(
            kInner, [&](std::size_t i) { inner[i] = o + i; }, {.jobs = 4});
        std::size_t sum = 0;
        for (const std::size_t v : inner) sum += v;
        sums[o] = sum;
      },
      {.jobs = 4});
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o], o * kInner + kInner * (kInner - 1) / 2);
  }
}

TEST_F(ParallelTest, ThreadPoolRunsSubmittedTasks) {
  ThreadPool& pool = ThreadPool::instance();
  pool.ensure_workers(2);
  EXPECT_GE(pool.worker_count(), 2);
  constexpr int kTasks = 16;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace uld3d::parallel

#!/bin/sh
# Exercises uld3d_cli's exit-code discipline:
#   0 success, 2 usage error, 3 config error, 4 model/evaluation error.
# Usage: cli_exit_codes.sh /path/to/uld3d_cli
set -u

cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

check() {
  expected="$1"
  shift
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: expected exit $expected, got $got: $*" >&2
    failures=$((failures + 1))
  fi
}

# 0: success paths
check 0 "$cli" dump-config
check 0 "$cli" compare --network alexnet

# 2: usage errors
check 2 "$cli"
check 2 "$cli" frobnicate
check 2 "$cli" compare --bogus-flag
check 2 "$cli" arch --network alexnet   # arch without --config

# 3: config errors
check 3 "$cli" compare --config "$tmpdir/does_not_exist.ini"

printf '[study]\ncapacity_mb = -4\n' > "$tmpdir/bad_range.ini"
check 3 "$cli" compare --config "$tmpdir/bad_range.ini"

printf '[study]\ncapacity_mb = oops\n' > "$tmpdir/bad_value.ini"
check 3 "$cli" compare --config "$tmpdir/bad_value.ini"

# unknown-key typo: warning by default, fatal under --strict
printf '[study]\ncapcity_mb = 64\n' > "$tmpdir/typo.ini"
check 0 "$cli" compare --config "$tmpdir/typo.ini"
check 3 "$cli" compare --strict --config "$tmpdir/typo.ini"

# the typo warning (with suggestion) must land on stderr
stderr_out="$("$cli" compare --config "$tmpdir/typo.ini" 2>&1 >/dev/null)"
case "$stderr_out" in
  *did_you_mean=capacity_mb*) : ;;
  *) echo "FAIL: expected typo suggestion on stderr, got: $stderr_out" >&2
     failures=$((failures + 1)) ;;
esac

# 4: model errors, forced deterministically via the fault injector
check 4 env ULD3D_FAULT="core.edp.evaluate=kNumericalError" "$cli" sweep
check 4 env ULD3D_FAULT="sim.network.layer=kNumericalError" "$cli" compare

# --keep-going: the 3 injected thermal faults plus the grid's 6 naturally
# infeasible points (n_cs > n_geom) are all recorded, the sweep completes,
# and the summary lands on stderr
check 0 env ULD3D_FAULT="dse.sweep.point=kThermalLimit:0:3" "$cli" sweep --keep-going
summary="$(ULD3D_FAULT='dse.sweep.point=kThermalLimit:0:3' "$cli" sweep --keep-going 2>&1 >/dev/null)"
case "$summary" in
  *"9 of 20 design points failed"*) : ;;
  *) echo "FAIL: expected failure summary on stderr, got: $summary" >&2
     failures=$((failures + 1)) ;;
esac
case "$summary" in
  *kThermalLimit*) : ;;
  *) echo "FAIL: expected injected kThermalLimit in summary, got: $summary" >&2
     failures=$((failures + 1)) ;;
esac

if [ "$failures" -ne 0 ]; then
  echo "$failures exit-code check(s) failed" >&2
  exit 1
fi
echo "all exit-code checks passed"

#include "uld3d/util/jsonv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "uld3d/util/check.hpp"

namespace uld3d {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, RoundTripPrecision) {
  // Doubles written at precision 17 must re-parse exactly (the fidelity
  // gate compares at 1e-9 relative tolerance).
  const double x = 5.4760983372718347;
  const JsonValue v = json_parse("5.4760983372718347");
  EXPECT_EQ(v.as_number(), x);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(json_parse("\"a\\nb\"").as_string(), "a\nb");
  EXPECT_EQ(json_parse("\"q\\\"q\"").as_string(), "q\"q");
  EXPECT_EQ(json_parse("\"back\\\\slash\"").as_string(), "back\\slash");
  EXPECT_EQ(json_parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(json_parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é as UTF-8
}

TEST(JsonParseTest, ArraysAndObjects) {
  const JsonValue v = json_parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), PreconditionError);
}

TEST(JsonParseTest, ObjectPreservesInsertionOrder) {
  const JsonValue v = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonParseTest, MalformedInputsThrow) {
  EXPECT_THROW((void)json_parse(""), JsonParseError);
  EXPECT_THROW((void)json_parse("not json"), JsonParseError);
  EXPECT_THROW((void)json_parse("{"), JsonParseError);
  EXPECT_THROW((void)json_parse("[1, 2,]"), JsonParseError);
  EXPECT_THROW((void)json_parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW((void)json_parse("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)json_parse("{} trailing"), JsonParseError);
  EXPECT_THROW((void)json_parse("nul"), JsonParseError);
}

TEST(JsonParseTest, TypeMismatchesThrow) {
  const JsonValue v = json_parse("[1]");
  EXPECT_THROW((void)v.as_object(), PreconditionError);
  EXPECT_THROW((void)v.as_number(), PreconditionError);
  EXPECT_THROW((void)v.as_string(), PreconditionError);
}

TEST(JsonParseTest, ConvenienceAccessors) {
  const JsonValue v = json_parse(R"({"n": 7, "s": "x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -2.0), -2.0);
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("n", "d"), "d");
}

TEST(JsonParseTest, FileMissingThrows) {
  EXPECT_THROW((void)json_parse_file("/nonexistent/zzz.json"),
               JsonParseError);
}

TEST(JsonParseTest, NestedDepthAndWhitespace) {
  const JsonValue v = json_parse(" \n\t[ { \"k\" : [ 1 ,\n 2 ] } ] ");
  EXPECT_DOUBLE_EQ(v.as_array()[0].at("k").as_array()[1].as_number(), 2.0);
}

// Robustness against truncated artifacts: a process killed mid-write (pre-
// atomic-rename files from other tools, half-copied checkpoints) leaves an
// arbitrary prefix of a valid document.  EVERY proper prefix must raise a
// clean JsonParseError — never crash, hang, or return garbage.  Run under
// ASan/UBSan in CI, this is a cheap deterministic fuzz of the parser.
TEST(JsonParseHardeningTest, EveryPrefixOfAValidDocumentFailsCleanly) {
  const std::string doc =
      "{\n"
      "  \"kind\": \"uld3d-sweep-checkpoint\",\n"
      "  \"schema_version\": 1,\n"
      "  \"fingerprint\": \"ab\\u0041\\\"cd\",\n"
      "  \"grid_size\": 20,\n"
      "  \"values\": [1e308, -0.25, 5e-324, true, false, null],\n"
      "  \"rows\": [{\"index\": 0, \"metrics\": [1.5], \"failure\": null}]\n"
      "}\n";
  ASSERT_NO_THROW((void)json_parse(doc));
  // Iterate over the whitespace-trimmed document: a prefix that only strips
  // trailing whitespace is still a complete (legal) document.
  std::string trimmed = doc;
  while (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
  for (std::size_t n = 0; n < trimmed.size(); ++n) {
    const std::string prefix = trimmed.substr(0, n);
    EXPECT_THROW((void)json_parse(prefix), JsonParseError)
        << "prefix length " << n;
  }
}

TEST(JsonParseHardeningTest, GarbageBytesFailCleanly) {
  for (const char* garbage :
       {"\x01\x02\x03", "{\"a\": 0x12}", "[1, 2,, 3]", "{]", "\"\\q\"",
        "nul", "truee", "[\"unterminated]", "{\"k\" 1}", "- 5", "+5",
        "1e", "1e+", ".5", "[}", "\xff\xfe{}"}) {
    EXPECT_THROW((void)json_parse(garbage), JsonParseError) << garbage;
  }
}

TEST(JsonParseHardeningTest, DeepNestingIsRefusedNotStackOverflowed) {
  // 100k unclosed brackets must not recurse to a stack overflow; the parser
  // caps nesting and reports it as a parse error.
  const std::string deep_array(100000, '[');
  EXPECT_THROW((void)json_parse(deep_array), JsonParseError);
  std::string deep_objects;
  for (int i = 0; i < 100000; ++i) deep_objects += "{\"k\":";
  EXPECT_THROW((void)json_parse(deep_objects), JsonParseError);
  // Moderate nesting stays legal.
  std::string ok(100, '[');
  ok += "1";
  ok += std::string(100, ']');
  EXPECT_NO_THROW((void)json_parse(ok));
}

}  // namespace
}  // namespace uld3d

#include "uld3d/nn/zoo.hpp"

#include <gtest/gtest.h>

#include <set>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {
namespace {

TEST(Zoo, ResNet18ParameterCountMatchesPublished) {
  // torchvision ResNet-18: ~11.7M parameters (paper: ~12M).
  const Network net = make_resnet18();
  EXPECT_GT(net.total_weights(), 11.0e6);
  EXPECT_LT(net.total_weights(), 12.5e6);
}

TEST(Zoo, ResNet18MacCountMatchesPublished) {
  // ~1.8 GMACs for one 224x224 inference.
  const Network net = make_resnet18();
  EXPECT_GT(net.total_macs(), 1.7e9);
  EXPECT_LT(net.total_macs(), 1.9e9);
}

TEST(Zoo, ResNet152ParameterCountMatchesPaper) {
  // Paper: "ResNet-152, model size ~60M parameters".
  const Network net = make_resnet152();
  EXPECT_GT(net.total_weights(), 55.0e6);
  EXPECT_LT(net.total_weights(), 65.0e6);
}

TEST(Zoo, AlexNetParameterCount) {
  // Classic AlexNet: ~61M parameters, dominated by the FC layers.
  const Network net = make_alexnet();
  EXPECT_GT(net.total_weights(), 55.0e6);
  EXPECT_LT(net.total_weights(), 65.0e6);
}

TEST(Zoo, Vgg16ParameterCount) {
  // ~138M parameters.
  const Network net = make_vgg16();
  EXPECT_GT(net.total_weights(), 130.0e6);
  EXPECT_LT(net.total_weights(), 145.0e6);
}

TEST(Zoo, Vgg16MacCount) {
  // ~15.5 GMACs.
  const Network net = make_vgg16();
  EXPECT_GT(net.total_macs(), 15.0e9);
  EXPECT_LT(net.total_macs(), 16.0e9);
}

TEST(Zoo, ResNet50ParameterCount) {
  const Network net = make_resnet50();
  EXPECT_GT(net.total_weights(), 24.0e6);
  EXPECT_LT(net.total_weights(), 27.0e6);
}

TEST(Zoo, ResNet18HasTableOneLayers) {
  const Network net = make_resnet18();
  const auto has = [&](const std::string& name) {
    for (const auto& l : net.layers()) {
      if (l.name() == name) return true;
    }
    return false;
  };
  for (const char* name :
       {"CONV1", "POOL1", "L1.0 CONV1", "L1.0 CONV2", "L2.0 DS", "L2.0 CONV1",
        "L3.0 DS", "L4.1 CONV2", "FC"}) {
    EXPECT_TRUE(has(name)) << name;
  }
}

TEST(Zoo, ResNet18DownsampleShapes) {
  const Network net = make_resnet18();
  for (const auto& l : net.layers()) {
    if (l.name() == "L2.0 DS") {
      EXPECT_EQ(l.conv().k, 128);
      EXPECT_EQ(l.conv().c, 64);
      EXPECT_EQ(l.conv().ox, 28);
      EXPECT_EQ(l.conv().fx, 1);
      EXPECT_EQ(l.conv().stride, 2);
    }
    if (l.name() == "L4.1 CONV2") {
      EXPECT_EQ(l.conv().k, 512);
      EXPECT_EQ(l.conv().c, 512);
      EXPECT_EQ(l.conv().ox, 7);
      EXPECT_EQ(l.conv().fx, 3);
    }
  }
}

TEST(Zoo, FirstConvMatchesImageNetStem) {
  for (const auto* name : {"resnet18", "resnet152"}) {
    const Network net = make_network(name);
    const auto& conv = net.layer(0).conv();
    EXPECT_EQ(conv.k, 64) << name;
    EXPECT_EQ(conv.c, 3) << name;
    EXPECT_EQ(conv.fx, 7) << name;
    EXPECT_EQ(conv.stride, 2) << name;
    EXPECT_EQ(conv.ox, 112) << name;
  }
}

TEST(Zoo, LookupIsCaseAndPunctuationInsensitive) {
  EXPECT_EQ(make_network("ResNet-18").name(), "ResNet-18");
  EXPECT_EQ(make_network("RESNET_18").name(), "ResNet-18");
  EXPECT_EQ(make_network("vgg").name(), "VGG-16");
  EXPECT_EQ(make_network("AlexNet").name(), "AlexNet");
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(make_network("lenet-5"), PreconditionError);
}

TEST(Zoo, AllZooNamesResolve) {
  for (const auto& name : zoo_names()) {
    EXPECT_NO_THROW(make_network(name)) << name;
  }
}

class ZooConsistency : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooConsistency, ChannelsChainThroughConvLayers) {
  // Every conv's input-channel count must be producible by some earlier
  // layer's output channels (or be the 3-channel image).  Fully-connected
  // layers consume FLATTENED features (channels x spatial), so their input
  // may also be a previous channel count times a spatial square.
  const Network net = make_network(GetParam());
  std::set<std::int64_t> available{3};
  std::set<std::int64_t> flattened;
  for (const auto& l : net.layers()) {
    if (!l.is_conv()) continue;
    const auto& c = l.conv();
    const bool is_fc = c.ox == 1 && c.oy == 1 && c.fx == 1 && c.fy == 1;
    const bool chained = available.count(c.c) > 0;
    const bool from_flatten = is_fc && flattened.count(c.c) > 0;
    EXPECT_TRUE(chained || from_flatten)
        << l.name() << " consumes unseen channel count " << c.c;
    available.insert(c.k);
    for (std::int64_t side = 1; side <= 8; ++side) {
      flattened.insert(c.k * side * side);
    }
  }
}

TEST_P(ZooConsistency, AllLayersHaveCompute) {
  const Network net = make_network(GetParam());
  for (const auto& l : net.layers()) {
    EXPECT_GT(l.ops(), 0) << l.name();
  }
  EXPECT_GT(net.total_macs(), 0);
}

TEST_P(ZooConsistency, SpatialSizesNonIncreasing) {
  // Feature-map side length never grows along the MAIN path of an ImageNet
  // classifier.  Downsample projections ("DS") sit on the parallel skip
  // path and are emitted before the block body, so they are excluded.
  const Network net = make_network(GetParam());
  std::int64_t previous = 1 << 20;
  for (const auto& l : net.layers()) {
    if (!l.is_conv()) continue;
    if (l.name().find("DS") != std::string::npos) continue;
    EXPECT_LE(l.conv().ox, previous) << l.name();
    previous = std::max<std::int64_t>(l.conv().ox, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ZooConsistency,
                         ::testing::Values("alexnet", "vgg16", "resnet18",
                                           "resnet34", "resnet50",
                                           "resnet152"));

}  // namespace
}  // namespace uld3d::nn

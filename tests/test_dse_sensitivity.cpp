#include "uld3d/dse/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::dse {
namespace {

TEST(Sensitivity, LinearObjectiveHasUnitElasticity) {
  // f = 3x: df/f per dx/x = 1 exactly.
  const auto results = analyze_sensitivity(
      {"x"}, {2.0},
      [](const std::vector<double>& p) { return 3.0 * p[0]; });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].elasticity, 1.0, 1e-9);
}

TEST(Sensitivity, PowerLawElasticityEqualsExponent) {
  // f = x^2 -> elasticity ~ 2 (central difference is exact to O(step^2)).
  const auto results = analyze_sensitivity(
      {"x"}, {5.0},
      [](const std::vector<double>& p) { return p[0] * p[0]; }, 0.01);
  EXPECT_NEAR(results[0].elasticity, 2.0, 1e-3);
}

TEST(Sensitivity, InverseGivesMinusOne) {
  const auto results = analyze_sensitivity(
      {"x"}, {4.0},
      [](const std::vector<double>& p) { return 1.0 / p[0]; }, 0.01);
  EXPECT_NEAR(results[0].elasticity, -1.0, 1e-3);
}

TEST(Sensitivity, IndependentParameterHasZeroElasticity) {
  const auto results = analyze_sensitivity(
      {"x", "unused"}, {2.0, 7.0},
      [](const std::vector<double>& p) { return p[0]; });
  EXPECT_NEAR(results[1].elasticity, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(results[1].objective_minus, results[1].objective_plus);
}

TEST(Sensitivity, PerturbsOneParameterAtATime) {
  const auto results = analyze_sensitivity(
      {"x", "y"}, {10.0, 20.0},
      [](const std::vector<double>& p) { return p[0] + 100.0 * p[1]; }, 0.1);
  // x perturbation must not include y movement.
  EXPECT_NEAR(results[0].objective_plus - results[0].objective_minus,
              2.0 * 0.1 * 10.0, 1e-9);
}

TEST(Sensitivity, TableSortsByMagnitude) {
  auto results = analyze_sensitivity(
      {"weak", "strong"}, {1.0, 1.0},
      [](const std::vector<double>& p) { return p[0] + 10.0 * p[1]; });
  const Table t = sensitivity_table(results);
  const std::string s = t.to_string();
  EXPECT_LT(s.find("strong"), s.find("weak"));
}

TEST(Sensitivity, Validation) {
  const auto f = [](const std::vector<double>& p) { return p[0]; };
  EXPECT_THROW(analyze_sensitivity({"a", "b"}, {1.0}, f), PreconditionError);
  EXPECT_THROW(analyze_sensitivity({"a"}, {1.0}, f, 0.0), PreconditionError);
  EXPECT_THROW(analyze_sensitivity({"a"}, {1.0}, f, 1.0), PreconditionError);
  const auto zero = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(analyze_sensitivity({"a"}, {1.0}, zero), PreconditionError);
}

}  // namespace
}  // namespace uld3d::dse

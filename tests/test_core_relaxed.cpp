#include "uld3d/core/relaxed_baseline.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

AreaModel paper_like_area() {
  AreaModel a;
  a.cs_area_um2 = 10.0;
  a.mem_cells_area_um2 = 72.0;  // gamma_cells = 7.2 -> N = 8
  a.mem_perif_area_um2 = 18.0;
  a.bus_area_um2 = 4.0;         // A_2D = 104
  return a;
}

Chip2d chip2d() {
  Chip2d c;
  c.bandwidth_bits_per_cycle = 256.0;
  c.peak_ops_per_cycle = 512.0;
  c.alpha_pj_per_bit = 1.5;
  c.compute_pj_per_op = 1.0;
  c.cs_idle_pj_per_cycle = 2.0;
  c.mem_idle_pj_per_cycle = 10.0;
  return c;
}

TEST(RelaxedDesignPoint, NoRelaxationKeepsFootprint) {
  const auto p = relaxed_design_point(paper_like_area(), 1.0);
  EXPECT_DOUBLE_EQ(p.footprint_um2, 104.0);
  EXPECT_EQ(p.n_2d, 1);
  EXPECT_EQ(p.n_3d, 8);  // 1 + floor(72/10)
}

TEST(RelaxedDesignPoint, SmallGrowthAbsorbedByFootprint) {
  // Grown cells (86.4) still < A_2D (104): no extra 2D CSs (Eq. 9's max).
  const auto p = relaxed_design_point(paper_like_area(), 1.2);
  EXPECT_EQ(p.n_2d, 1);
  EXPECT_GE(p.n_3d, 8);
}

TEST(RelaxedDesignPoint, LargeGrowthAddsBaselineCss) {
  // scale 2.0: cells 144 > A_2D 104 -> extra 40 -> 4 extra CSs.
  const auto p = relaxed_design_point(paper_like_area(), 2.0);
  EXPECT_EQ(p.n_2d, 5);
  EXPECT_EQ(p.n_3d, 1 + 14);  // floor(144/10)
  EXPECT_GT(p.footprint_um2, 104.0);
}

TEST(RelaxedDesignPoint, M3dAlwaysHostsAtLeastAsMany) {
  for (const double scale : {1.0, 1.3, 1.7, 2.2, 3.0, 5.0}) {
    const auto p = relaxed_design_point(paper_like_area(), scale);
    EXPECT_GE(p.n_3d, p.n_2d) << scale;
  }
}

TEST(RelaxedDesignPoint, RejectsShrinkage) {
  EXPECT_THROW(relaxed_design_point(paper_like_area(), 0.9),
               PreconditionError);
}

TEST(RelaxedEdp, UnrelaxedMatchesStandardEvaluation) {
  const AreaModel area = paper_like_area();
  const Chip2d c2 = chip2d();
  const auto point = relaxed_design_point(area, 1.0);
  const RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const WorkloadPoint w = synthetic_workload(64.0, 1.0e6, 64);

  const EdpResult relaxed = evaluate_relaxed_edp(w, c2, point, bw);

  Chip3d c3;
  c3.parallel_cs = point.n_3d;
  c3.bandwidth_bits_per_cycle = c2.bandwidth_bits_per_cycle * 8.0;
  c3.alpha_pj_per_bit = c2.alpha_pj_per_bit * 0.97;
  c3.mem_idle_pj_per_cycle = c2.mem_idle_pj_per_cycle;
  const EdpResult direct = evaluate_edp(w, c2, c3);

  EXPECT_NEAR(relaxed.speedup, direct.speedup, 1e-6);
  EXPECT_NEAR(relaxed.edp_benefit, direct.edp_benefit, 0.05 * direct.edp_benefit);
}

TEST(RelaxedEdp, BenefitDecaysTowardOneAtExtremeRelaxation) {
  const AreaModel area = paper_like_area();
  const Chip2d c2 = chip2d();
  const RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const WorkloadPoint w = synthetic_workload(64.0, 1.0e6, 16);
  const double b1 =
      evaluate_relaxed_edp(w, c2, relaxed_design_point(area, 1.0), bw).edp_benefit;
  const double b5 =
      evaluate_relaxed_edp(w, c2, relaxed_design_point(area, 5.0), bw).edp_benefit;
  EXPECT_GT(b1, 3.0);
  EXPECT_LT(b5, 2.0);
  EXPECT_GE(b5, 0.9);  // never meaningfully WORSE than the matched 2D chip
}

class RelaxationSweep : public ::testing::TestWithParam<double> {};

TEST_P(RelaxationSweep, BenefitIsBoundedByUnrelaxedCssRatio) {
  const double scale = GetParam();
  const AreaModel area = paper_like_area();
  const Chip2d c2 = chip2d();
  const RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const auto point = relaxed_design_point(area, scale);
  const WorkloadPoint w = synthetic_workload(64.0, 1.0e6, 1024);
  const EdpResult r = evaluate_relaxed_edp(w, c2, point, bw);
  const double cs_ratio =
      static_cast<double>(point.n_3d) / static_cast<double>(point.n_2d);
  EXPECT_LE(r.speedup, cs_ratio + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, RelaxationSweep,
                         ::testing::Values(1.0, 1.2, 1.6, 2.0, 2.5, 4.0));

}  // namespace
}  // namespace uld3d::core

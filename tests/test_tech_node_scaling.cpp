#include "uld3d/tech/node_scaling.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {
namespace {

TEST(NodeScaling, FactorsFollowClassicRules) {
  const NodeScaling s = NodeScaling::to(65.0);
  EXPECT_DOUBLE_EQ(s.node_nm, 65.0);
  EXPECT_DOUBLE_EQ(s.area_scale, 0.25);
  EXPECT_DOUBLE_EQ(s.energy_scale, 0.5);
  EXPECT_DOUBLE_EQ(s.delay_scale, 0.5);
}

TEST(NodeScaling, IdentityAt130) {
  const NodeScaling s = NodeScaling::to(130.0);
  EXPECT_DOUBLE_EQ(s.area_scale, 1.0);
  EXPECT_DOUBLE_EQ(s.energy_scale, 1.0);
}

TEST(NodeScaling, PdkProjectionScalesEverythingTogether) {
  const auto base = FoundryM3dPdk::make_130nm();
  const auto scaled = scale_pdk_to_node(base, 65.0);
  EXPECT_DOUBLE_EQ(scaled.node().feature_nm, 65.0);
  // Bit area shrinks quadratically (F^2-denominated cell).
  EXPECT_NEAR(scaled.rram_bit_area_um2() / base.rram_bit_area_um2(), 0.25,
              1e-9);
  // Access energy linearly.
  EXPECT_NEAR(scaled.rram().read_energy_pj_per_bit /
                  base.rram().read_energy_pj_per_bit,
              0.5, 1e-9);
  // Target clock doubles.
  EXPECT_NEAR(scaled.node().target_frequency_mhz /
                  base.node().target_frequency_mhz,
              2.0, 1e-9);
  // ILV pitch tracks the metal stack.
  EXPECT_NEAR(scaled.ilv().pitch_nm / base.ilv().pitch_nm, 0.5, 1e-9);
}

TEST(NodeScaling, LibrariesScaleWithTheNode) {
  const auto base = FoundryM3dPdk::make_130nm();
  const auto scaled = scale_pdk_to_node(base, 65.0);
  EXPECT_NEAR(scaled.si_library().gate_area_um2() /
                  base.si_library().gate_area_um2(),
              0.25, 1e-9);
  EXPECT_NEAR(scaled.si_library().gate_energy_pj() /
                  base.si_library().gate_energy_pj(),
              0.5, 1e-9);
}

TEST(NodeScaling, GammaIsNodeInvariant) {
  // The paper's Eq.-2 driver must survive node projection: both the cell
  // array and the logic shrink quadratically.
  const auto base = FoundryM3dPdk::make_130nm();
  const auto scaled = scale_pdk_to_node(base, 28.0);
  const double capacity = 64.0 * 8.0 * 1024.0 * 1024.0;
  const double cells_ratio =
      scaled.rram_macro(capacity, 8, false).cell_array_area_um2 /
      base.rram_macro(capacity, 8, false).cell_array_area_um2;
  const double logic_ratio = scaled.si_library().gate_area_um2() /
                             base.si_library().gate_area_um2();
  EXPECT_NEAR(cells_ratio, logic_ratio, 1e-9);
}

TEST(NodeScaling, ViaPitchCaseTwoSurvivesProjection) {
  // At every node the via-limited area stays just below the FET-limited
  // area (both scale with F^2), preserving the Obs.-8 crossover.
  const auto base = FoundryM3dPdk::make_130nm();
  for (const double node : {65.0, 28.0, 7.0}) {
    const auto scaled = scale_pdk_to_node(base, node);
    EXPECT_DOUBLE_EQ(scaled.rram_bit_area_m3d_um2(),
                     scaled.rram_bit_area_um2())
        << node;
    EXPECT_GT(scaled.with_ilv_pitch_scale(1.6).rram_bit_area_m3d_um2(),
              scaled.rram_bit_area_um2())
        << node;
  }
}

TEST(NodeScaling, RejectsNonsenseNodes) {
  EXPECT_THROW(NodeScaling::to(0.0), PreconditionError);
  EXPECT_THROW(NodeScaling::to(-5.0), PreconditionError);
  EXPECT_THROW(NodeScaling::to(2000.0), PreconditionError);
}

}  // namespace
}  // namespace uld3d::tech

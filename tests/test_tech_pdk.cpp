#include "uld3d/tech/pdk.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::tech {
namespace {

TEST(Pdk, DefaultBitAreasMatchAtBaseline) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  // At delta = 1, beta = 1 the M3D cell is still FET-limited (the via floor
  // sits just below), so 2D and M3D bit areas coincide.
  EXPECT_DOUBLE_EQ(pdk.rram_bit_area_um2(), pdk.rram_bit_area_m3d_um2());
}

TEST(Pdk, BitAreaMatchesCellGeometry) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const double f_um = units::nm_to_um(pdk.node().feature_nm);
  const double expected =
      pdk.rram().cell_area_f2 * f_um * f_um / pdk.rram().bits_per_cell;
  EXPECT_NEAR(pdk.rram_bit_area_um2(), expected, 1e-12);
}

TEST(Pdk, FetWidthRelaxationGrowsM3dCellOnly) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const auto relaxed = pdk.with_fet_width_relaxation(2.0);
  EXPECT_DOUBLE_EQ(relaxed.rram_bit_area_um2(), pdk.rram_bit_area_um2());
  EXPECT_NEAR(relaxed.rram_bit_area_m3d_um2(), 2.0 * pdk.rram_bit_area_m3d_um2(),
              1e-12);
}

TEST(Pdk, SmallViaPitchIncreaseIsFree) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  // The default is ~80% via-limited, so a 1.1x pitch stays FET-limited.
  const auto scaled = pdk.with_ilv_pitch_scale(1.1);
  EXPECT_DOUBLE_EQ(scaled.rram_bit_area_m3d_um2(), pdk.rram_bit_area_m3d_um2());
}

TEST(Pdk, LargeViaPitchBecomesQuadratic) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const auto a = pdk.with_ilv_pitch_scale(2.0);
  const auto b = pdk.with_ilv_pitch_scale(4.0);
  // Once via-limited, cell area scales as beta^2.
  EXPECT_NEAR(b.rram_bit_area_m3d_um2() / a.rram_bit_area_m3d_um2(), 4.0, 1e-9);
  // And only the M3D cell grows; the 2D cell has no ILVs.
  EXPECT_DOUBLE_EQ(b.rram_bit_area_um2(), pdk.rram_bit_area_um2());
}

TEST(Pdk, ViaLimitCrossoverBetween13And16) {
  // Observation 8's calibration target: benefits unchanged at 1.3x but the
  // via floor binds before 1.6x.
  const auto pdk = FoundryM3dPdk::make_130nm();
  const double at_10 = pdk.rram_bit_area_m3d_um2();
  EXPECT_GT(pdk.with_ilv_pitch_scale(1.6).rram_bit_area_m3d_um2(), at_10);
}

TEST(Pdk, MacroGeometryScalesWithCapacity) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const auto small = pdk.rram_macro(units::mb_to_bits(16.0), 1, false);
  const auto large = pdk.rram_macro(units::mb_to_bits(64.0), 1, false);
  EXPECT_NEAR(large.cell_array_area_um2 / small.cell_array_area_um2, 4.0, 1e-9);
  EXPECT_GT(large.periph_area_um2, small.periph_area_um2);
  EXPECT_DOUBLE_EQ(large.total_area_um2,
                   large.cell_array_area_um2 + large.periph_area_um2);
}

TEST(Pdk, MoreBanksMorePeripheralArea) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const double cap = units::mb_to_bits(64.0);
  const auto one = pdk.rram_macro(cap, 1, false);
  const auto eight = pdk.rram_macro(cap, 8, false);
  EXPECT_DOUBLE_EQ(one.cell_array_area_um2, eight.cell_array_area_um2);
  EXPECT_GT(eight.periph_area_um2, one.periph_area_um2);
}

TEST(Pdk, CaseStudyCapacityYieldsPaperScaleArrayArea) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const auto macro = pdk.rram_macro(units::mb_to_bits(64.0), 8, false);
  // ~48 mm^2 of cells at 130 nm with multi-bit 1T8R storage.
  EXPECT_GT(macro.cell_array_area_um2, 40.0e6);
  EXPECT_LT(macro.cell_array_area_um2, 56.0e6);
}

TEST(Pdk, BandwidthMatchesRowWidthAtRelaxedClock) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  // 25 ns sense fits in the 50 ns cycle at 20 MHz: one row per cycle.
  EXPECT_DOUBLE_EQ(pdk.bank_bandwidth_bits_per_cycle(),
                   pdk.rram().bank_read_bits);
  EXPECT_DOUBLE_EQ(pdk.clock_period_ns(), 50.0);
}

TEST(Pdk, FasterClockReducesPerCycleBandwidth) {
  NodeParams node;
  node.target_frequency_mhz = 100.0;  // 10 ns period < 25 ns sense
  const FoundryM3dPdk pdk(node, RramParams{}, CnfetParams{}, IlvParams{});
  EXPECT_LT(pdk.bank_bandwidth_bits_per_cycle(), pdk.rram().bank_read_bits);
}

TEST(Pdk, IdleEnergyScalesWithCapacity) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  const double e64 = pdk.rram_idle_energy_pj_per_cycle(units::mb_to_bits(64.0));
  const double e128 = pdk.rram_idle_energy_pj_per_cycle(units::mb_to_bits(128.0));
  EXPECT_NEAR(e128 / e64, 2.0, 1e-9);
  EXPECT_GT(e64, 0.0);
}

TEST(Pdk, InvalidParametersThrow) {
  const auto pdk = FoundryM3dPdk::make_130nm();
  EXPECT_THROW(pdk.with_fet_width_relaxation(0.9), PreconditionError);
  EXPECT_THROW(pdk.with_ilv_pitch_scale(0.0), PreconditionError);
  EXPECT_THROW(pdk.rram_macro(0.0, 1, false), PreconditionError);
  EXPECT_THROW(pdk.rram_macro(100.0, 0, false), PreconditionError);
}

class FetWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(FetWidthSweep, M3dBitAreaScalesLinearlyOnceFetLimited) {
  const double delta = GetParam();
  const auto pdk = FoundryM3dPdk::make_130nm();
  const auto relaxed = pdk.with_fet_width_relaxation(delta);
  EXPECT_NEAR(relaxed.rram_bit_area_m3d_um2(),
              delta * pdk.rram_bit_area_m3d_um2(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Deltas, FetWidthSweep,
                         ::testing::Values(1.0, 1.2, 1.6, 2.0, 2.5, 3.0));

}  // namespace
}  // namespace uld3d::tech

#include "uld3d/io/config.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::io {
namespace {

constexpr const char* kSample = R"(
# a comment
[study]
capacity_mb = 64      # trailing comment
flag = true

[node]
feature_nm = 130
name = hello world
)";

TEST(Config, ParsesSectionsAndKeys) {
  const Config c = Config::parse(kSample);
  EXPECT_TRUE(c.has("study", "capacity_mb"));
  EXPECT_TRUE(c.has("node", "feature_nm"));
  EXPECT_FALSE(c.has("study", "nope"));
  EXPECT_FALSE(c.has("nope", "capacity_mb"));
}

TEST(Config, TypedGetters) {
  const Config c = Config::parse(kSample);
  EXPECT_DOUBLE_EQ(c.get_double("study", "capacity_mb", 0.0), 64.0);
  EXPECT_EQ(c.get_int("node", "feature_nm", 0), 130);
  EXPECT_TRUE(c.get_bool("study", "flag", false));
  EXPECT_EQ(c.get_string("node", "name", ""), "hello world");
}

TEST(Config, FallbacksWhenAbsent) {
  const Config c = Config::parse(kSample);
  EXPECT_DOUBLE_EQ(c.get_double("study", "missing", 3.5), 3.5);
  EXPECT_EQ(c.get_int("missing", "missing", 7), 7);
  EXPECT_FALSE(c.get_bool("study", "missing", false));
  EXPECT_EQ(c.get_string("x", "y", "dflt"), "dflt");
}

TEST(Config, BooleanSpellings) {
  const Config c = Config::parse("[s]\na=yes\nb=0\nc=ON\nd=False\n");
  EXPECT_TRUE(c.get_bool("s", "a", false));
  EXPECT_FALSE(c.get_bool("s", "b", true));
  EXPECT_TRUE(c.get_bool("s", "c", false));
  EXPECT_FALSE(c.get_bool("s", "d", true));
}

TEST(Config, BadValuesThrow) {
  const Config c = Config::parse("[s]\nx = not_a_number\n");
  EXPECT_THROW(c.get_double("s", "x", 0.0), Error);
  EXPECT_THROW(c.get_int("s", "x", 0), Error);
  EXPECT_THROW(c.get_bool("s", "x", false), PreconditionError);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("[unclosed\n"), PreconditionError);
  EXPECT_THROW(Config::parse("no_equals_sign\n"), PreconditionError);
  EXPECT_THROW(Config::parse("= value_without_key\n"), PreconditionError);
}

TEST(Config, KeysBeforeAnySectionLandInGlobal) {
  const Config c = Config::parse("top = 1\n[s]\nx = 2\n");
  EXPECT_EQ(c.get_int("global", "top", 0), 1);
}

TEST(Config, RoundTripsThroughText) {
  Config c;
  c.set("alpha", "k1", "v1");
  c.set("beta", "k2", "42");
  const Config back = Config::parse(c.to_text());
  EXPECT_EQ(back.get_string("alpha", "k1", ""), "v1");
  EXPECT_EQ(back.get_int("beta", "k2", 0), 42);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/file.ini"), PreconditionError);
}

}  // namespace
}  // namespace uld3d::io

#include "uld3d/tech/std_cell_library.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {
namespace {

TEST(StdCellLibrary, SiLibraryHasCoreCells) {
  const auto lib = StdCellLibrary::make_si_cmos_130nm();
  for (const char* name :
       {"INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1", "FA_X1", "BUF_X8"}) {
    EXPECT_TRUE(lib.has_cell(name)) << name;
  }
  EXPECT_FALSE(lib.has_cell("NONEXISTENT"));
}

TEST(StdCellLibrary, UnknownCellThrows) {
  const auto lib = StdCellLibrary::make_si_cmos_130nm();
  EXPECT_THROW(lib.cell("NOPE"), PreconditionError);
}

TEST(StdCellLibrary, GateMetricsArePositive) {
  const auto lib = StdCellLibrary::make_si_cmos_130nm();
  EXPECT_GT(lib.gate_area_um2(), 0.0);
  EXPECT_GT(lib.gate_energy_pj(), 0.0);
  EXPECT_GT(lib.gate_leakage_nw(), 0.0);
  EXPECT_GT(lib.fo4_delay_ps(), 0.0);
}

TEST(StdCellLibrary, AreasPlausibleFor130nm) {
  const auto lib = StdCellLibrary::make_si_cmos_130nm();
  // A 130 nm NAND2 is on the order of 10 um^2; a DFF several times that.
  EXPECT_GT(lib.gate_area_um2(), 5.0);
  EXPECT_LT(lib.gate_area_um2(), 20.0);
  EXPECT_GT(lib.cell("DFF_X1").area_um2, 3.0 * lib.cell("INV_X1").area_um2);
}

TEST(StdCellLibrary, CnfetLibraryIsDeratedInSpeed) {
  const auto si = StdCellLibrary::make_si_cmos_130nm();
  const auto cnfet = StdCellLibrary::make_cnfet_130nm(0.8);
  EXPECT_GT(cnfet.cell("CNT_INV_X1").delay_ps, si.cell("INV_X1").delay_ps);
  EXPECT_NEAR(cnfet.cell("CNT_INV_X1").delay_ps,
              si.cell("INV_X1").delay_ps / 0.8, 1e-9);
}

TEST(StdCellLibrary, CnfetLeaksLess) {
  const auto si = StdCellLibrary::make_si_cmos_130nm();
  const auto cnfet = StdCellLibrary::make_cnfet_130nm();
  EXPECT_LT(cnfet.cell("CNT_NAND2_X1").leakage_nw,
            si.cell("NAND2_X1").leakage_nw);
}

TEST(StdCellLibrary, CnfetCellsCarryPrefix) {
  const auto cnfet = StdCellLibrary::make_cnfet_130nm();
  for (const auto& cell : cnfet.cells()) {
    EXPECT_EQ(cell.name.rfind("CNT_", 0), 0u) << cell.name;
  }
  EXPECT_EQ(cnfet.tier(), TierKind::kCnfetFeol);
}

TEST(StdCellLibrary, InvalidDriveRatioThrows) {
  EXPECT_THROW(StdCellLibrary::make_cnfet_130nm(0.0), PreconditionError);
  EXPECT_THROW(StdCellLibrary::make_cnfet_130nm(2.0), PreconditionError);
}

class DriveRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriveRatioSweep, DelayScalesInversely) {
  const double ratio = GetParam();
  const auto si = StdCellLibrary::make_si_cmos_130nm();
  const auto cnfet = StdCellLibrary::make_cnfet_130nm(ratio);
  for (const auto& si_cell : si.cells()) {
    const auto& c = cnfet.cell("CNT_" + si_cell.name);
    EXPECT_NEAR(c.delay_ps * ratio, si_cell.delay_ps, 1e-9) << si_cell.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, DriveRatioSweep,
                         ::testing::Values(0.5, 0.6, 0.8, 1.0, 1.2));

}  // namespace
}  // namespace uld3d::tech

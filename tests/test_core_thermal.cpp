#include "uld3d/core/thermal.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

TEST(Thermal, EmptyStackHasNoRise) {
  const ThermalStack stack(2.0);
  EXPECT_DOUBLE_EQ(stack.temperature_rise_k(), 0.0);
  EXPECT_EQ(stack.tier_count(), 0u);
}

TEST(Thermal, SingleTierMatchesHandComputation) {
  // Eq. 17 with Y = 1: (R_1 + R_0) * P_1.
  ThermalStack stack(2.0);
  stack.add_tier({0.5, 4.0});
  EXPECT_DOUBLE_EQ(stack.temperature_rise_k(), (0.5 + 2.0) * 4.0);
}

TEST(Thermal, TwoTiersAccumulatePrefixResistance) {
  // Eq. 17: tier 1 sees R1+R0; tier 2 sees R1+R2+R0.
  ThermalStack stack(1.0);
  stack.add_tier({0.5, 2.0});
  stack.add_tier({0.25, 3.0});
  const double expected = (0.5 + 1.0) * 2.0 + (0.5 + 0.25 + 1.0) * 3.0;
  EXPECT_DOUBLE_EQ(stack.temperature_rise_k(), expected);
}

TEST(Thermal, RiseGrowsSuperlinearlyInUniformStacks) {
  // Quadratic growth: doubling Y more than doubles the rise.
  const auto rise = [](std::int64_t y) {
    ThermalStack stack(1.0);
    for (std::int64_t i = 0; i < y; ++i) stack.add_tier({0.5, 1.0});
    return stack.temperature_rise_k();
  };
  EXPECT_GT(rise(4), 2.0 * rise(2));
  EXPECT_GT(rise(8), 2.0 * rise(4));
}

TEST(Thermal, ZeroPowerTiersAddNothing) {
  ThermalStack stack(1.0);
  stack.add_tier({0.5, 2.0});
  const double before = stack.temperature_rise_k();
  stack.add_tier({10.0, 0.0});
  EXPECT_DOUBLE_EQ(stack.temperature_rise_k(), before);
}

TEST(Thermal, MaxTierPairsRespectsBudget) {
  const ThermalTier tier{0.5, 2.0};
  const std::int64_t y = ThermalStack::max_tier_pairs(1.0, tier, 60.0);
  ASSERT_GT(y, 0);
  // y tiers fit, y+1 do not.
  ThermalStack ok(1.0);
  for (std::int64_t i = 0; i < y; ++i) ok.add_tier(tier);
  EXPECT_LE(ok.temperature_rise_k(), 60.0);
  ok.add_tier(tier);
  EXPECT_GT(ok.temperature_rise_k(), 60.0);
}

TEST(Thermal, HotterTiersAllowFewerPairs) {
  const std::int64_t cool = ThermalStack::max_tier_pairs(1.0, {0.5, 1.0}, 60.0);
  const std::int64_t hot = ThermalStack::max_tier_pairs(1.0, {0.5, 4.0}, 60.0);
  EXPECT_GT(cool, hot);
}

TEST(Thermal, ImpossibleBudgetGivesZero) {
  EXPECT_EQ(ThermalStack::max_tier_pairs(100.0, {1.0, 10.0}, 60.0), 0);
}

TEST(Thermal, Validation) {
  EXPECT_THROW(ThermalStack(-1.0), PreconditionError);
  ThermalStack stack(1.0);
  EXPECT_THROW(stack.add_tier({-0.1, 1.0}), PreconditionError);
  EXPECT_THROW(stack.add_tier({0.1, -1.0}), PreconditionError);
  EXPECT_THROW(ThermalStack::max_tier_pairs(1.0, {0.5, 1.0}, 0.0),
               PreconditionError);
  EXPECT_THROW(ThermalStack::max_tier_pairs(1.0, {0.5, 0.0}, 60.0),
               PreconditionError);
}

class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, MaxPairsMonotoneInBudget) {
  const double budget = GetParam();
  const ThermalTier tier{0.4, 1.5};
  const std::int64_t y1 = ThermalStack::max_tier_pairs(1.0, tier, budget);
  const std::int64_t y2 = ThermalStack::max_tier_pairs(1.0, tier, 2.0 * budget);
  EXPECT_GE(y2, y1);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(10.0, 30.0, 60.0, 120.0));

}  // namespace
}  // namespace uld3d::core

#include "uld3d/tech/beol_device.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {
namespace {

TEST(BeolDevice, CatalogueHasFiveCandidates) {
  const auto all = beol_technology_catalogue();
  ASSERT_EQ(all.size(), 5u);
  for (const auto& d : all) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.drive_ratio_vs_si, 0.0) << d.name;
    EXPECT_LE(d.drive_ratio_vs_si, 1.0) << d.name;
  }
}

TEST(BeolDevice, IsoDriveWidthIsInverseDrive) {
  const auto cnfet = make_cnfet();
  EXPECT_NEAR(cnfet.width_relaxation_for_iso_drive(),
              1.0 / cnfet.drive_ratio_vs_si, 1e-12);
  const auto igzo = make_igzo();
  EXPECT_NEAR(igzo.width_relaxation_for_iso_drive(), 4.0, 1e-12);
}

TEST(BeolDevice, StrongDeviceNeedsNoRelaxation) {
  BeolDeviceTechnology strong = make_cnfet();
  strong.drive_ratio_vs_si = 1.3;
  EXPECT_DOUBLE_EQ(strong.width_relaxation_for_iso_drive(), 1.0);
}

TEST(BeolDevice, BeolCompatibilityByTemperature) {
  EXPECT_TRUE(make_cnfet().beol_compatible());
  EXPECT_TRUE(make_igzo().beol_compatible());
  // CoolCube's ~500 C epitaxy exceeds the default 400 C budget.
  EXPECT_FALSE(make_ltps_si().beol_compatible());
  EXPECT_TRUE(make_ltps_si().beol_compatible(550.0));
}

TEST(BeolDevice, PdkSubstitutionAppliesDeviceParameters) {
  const auto base = FoundryM3dPdk::make_130nm();
  const auto device = make_2d_fet();
  const auto pdk = pdk_with_beol_device(base, device);
  EXPECT_DOUBLE_EQ(pdk.cnfet().drive_ratio_vs_si, device.drive_ratio_vs_si);
  EXPECT_DOUBLE_EQ(pdk.cnfet().width_relaxation,
                   device.width_relaxation_for_iso_drive());
  EXPECT_DOUBLE_EQ(pdk.cnfet().access_energy_ratio,
                   device.access_energy_ratio);
  // Only the upper-tier device changes; the RRAM and node are untouched.
  EXPECT_DOUBLE_EQ(pdk.rram_bit_area_um2(), base.rram_bit_area_um2());
}

TEST(BeolDevice, WeakerDevicesGrowTheM3dCell) {
  const auto base = FoundryM3dPdk::make_130nm();
  const double cnfet =
      pdk_with_beol_device(base, make_cnfet()).rram_bit_area_m3d_um2();
  const double igzo =
      pdk_with_beol_device(base, make_igzo()).rram_bit_area_m3d_um2();
  EXPECT_GT(igzo, 2.5 * cnfet);
}

TEST(BeolDevice, InvalidDriveRejected) {
  BeolDeviceTechnology bad = make_cnfet();
  bad.drive_ratio_vs_si = 0.0;
  EXPECT_THROW(bad.width_relaxation_for_iso_drive(), PreconditionError);
  EXPECT_THROW(pdk_with_beol_device(FoundryM3dPdk::make_130nm(), bad),
               PreconditionError);
}

class DriveOrdering : public ::testing::TestWithParam<int> {};

TEST_P(DriveOrdering, LowerDriveNeverShrinksM3dCell) {
  const auto all = beol_technology_catalogue();
  const auto base = FoundryM3dPdk::make_130nm();
  const auto& a = all[static_cast<std::size_t>(GetParam())];
  for (const auto& b : all) {
    if (b.drive_ratio_vs_si <= a.drive_ratio_vs_si) {
      EXPECT_GE(pdk_with_beol_device(base, b).rram_bit_area_m3d_um2(),
                pdk_with_beol_device(base, a).rram_bit_area_m3d_um2() - 1e-12)
          << a.name << " vs " << b.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogue, DriveOrdering, ::testing::Range(0, 5));

}  // namespace
}  // namespace uld3d::tech

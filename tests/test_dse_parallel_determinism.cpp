// Parallel-vs-serial determinism: the sweep and sensitivity engines must
// produce BIT-IDENTICAL results at every jobs count, under both error
// policies, and with the fault injector armed (which pins them to serial).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "uld3d/dse/sensitivity.hpp"
#include "uld3d/dse/sweep.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::dse {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    parallel::set_jobs(0);
    FaultInjector::instance().reset();
  }
  void TearDown() override {
    parallel::set_jobs(0);
    FaultInjector::instance().reset();
  }
};

/// Bitwise double equality (NaN payloads included).
bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_rows_identical(const SweepResult& ref, const SweepResult& got,
                           int jobs) {
  ASSERT_EQ(ref.rows().size(), got.rows().size()) << "jobs=" << jobs;
  for (std::size_t i = 0; i < ref.rows().size(); ++i) {
    const SweepRow& r = ref.rows()[i];
    const SweepRow& g = got.rows()[i];
    ASSERT_EQ(r.params.size(), g.params.size()) << "row " << i;
    for (std::size_t k = 0; k < r.params.size(); ++k) {
      EXPECT_TRUE(bits_equal(r.params[k], g.params[k]))
          << "row " << i << " param " << k << " jobs=" << jobs;
    }
    ASSERT_EQ(r.metrics.size(), g.metrics.size()) << "row " << i;
    for (std::size_t k = 0; k < r.metrics.size(); ++k) {
      EXPECT_TRUE(bits_equal(r.metrics[k], g.metrics[k]))
          << "row " << i << " metric " << k << " jobs=" << jobs;
    }
    ASSERT_EQ(r.failure.has_value(), g.failure.has_value())
        << "row " << i << " jobs=" << jobs;
    if (r.failure.has_value()) {
      EXPECT_EQ(r.failure->code, g.failure->code) << "row " << i;
      EXPECT_EQ(r.failure->to_string(), g.failure->to_string())
          << "row " << i << " jobs=" << jobs;
    }
  }
}

Grid grid20x20() {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 1; i <= 20; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(i) * 0.5);
  }
  Grid g;
  g.axis("a", a).axis("b", b);
  return g;
}

/// Deterministic mix of successes, structured throws, and non-finite
/// metrics keyed purely on the point's parameters.
std::vector<double> spiky_evaluate(const std::vector<double>& p) {
  const auto ai = static_cast<std::int64_t>(p[0]);
  const auto bi = static_cast<std::int64_t>(p[1] * 2.0);
  if ((ai * 7 + bi) % 13 == 0) {
    throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "spiky throw")
                          .with("a", p[0])
                          .with("b", p[1]));
  }
  if ((ai + bi) % 17 == 0) {
    // Non-finite metric: the sweep records kNumericalError for the row.
    return {std::nan(""), p[0] + p[1]};
  }
  return {p[0] * p[1] + std::sin(p[0]) / (p[1] + 1.0), p[0] + p[1]};
}

TEST_F(ParallelDeterminismTest, SkipAndRecordRowsBitIdenticalAcrossJobs) {
  const Grid g = grid20x20();
  const SweepOptions serial{ErrorPolicy::kSkipAndRecord, /*jobs=*/1, {}, {}};
  const SweepResult ref = run_sweep(g, {"m0", "m1"}, spiky_evaluate, serial);
  ASSERT_GT(ref.failed_count(), 0u);  // the fixture must actually fail rows
  ASSERT_GT(ref.ok_count(), 0u);
  for (const int j : {2, 8}) {
    const SweepOptions opts{ErrorPolicy::kSkipAndRecord, j, {}, {}};
    expect_rows_identical(ref, run_sweep(g, {"m0", "m1"}, spiky_evaluate, opts),
                          j);
  }
}

TEST_F(ParallelDeterminismTest, GlobalJobsSettingIsBitIdenticalToo) {
  const Grid g = grid20x20();
  const SweepOptions serial{ErrorPolicy::kSkipAndRecord, /*jobs=*/1, {}, {}};
  const SweepResult ref = run_sweep(g, {"m0", "m1"}, spiky_evaluate, serial);
  parallel::set_jobs(8);  // options.jobs = 0 falls through to the global
  const SweepOptions global{ErrorPolicy::kSkipAndRecord, /*jobs=*/0, {}, {}};
  expect_rows_identical(ref, run_sweep(g, {"m0", "m1"}, spiky_evaluate, global),
                        8);
}

TEST_F(ParallelDeterminismTest, FailFastThrowsSameFirstFailureAcrossJobs) {
  const Grid g = grid20x20();
  std::string reference;
  for (const int j : {1, 2, 8}) {
    const SweepOptions opts{ErrorPolicy::kFailFast, j, {}, {}};
    try {
      (void)run_sweep(g, {"m0", "m1"}, spiky_evaluate, opts);
      FAIL() << "expected a failure at jobs=" << j;
    } catch (const StatusError& error) {
      if (j == 1) {
        reference = error.failure().to_string();
      } else {
        EXPECT_EQ(error.failure().to_string(), reference) << "jobs=" << j;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST_F(ParallelDeterminismTest, ArmedInjectorPinsSweepToSerialOrder) {
  // Plans trip on arrival order, which only a serial walk reproduces: with
  // the injector armed the sweep must hit exactly the serially-4th point
  // even when asked for 8 jobs.
  Grid g;
  g.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  const auto evaluate = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] * 2.0};
  };
  FaultInjector::instance().arm(
      "dse.sweep.point", Failure(ErrorCode::kNumericalError, "injected"),
      /*skip=*/3, /*count=*/1);
  const SweepOptions opts{ErrorPolicy::kSkipAndRecord, /*jobs=*/8, {}, {}};
  const SweepResult result = run_sweep(g, {"m"}, evaluate, opts);
  ASSERT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.failed_rows()[0], 3u);

  FaultInjector::instance().reset();
  FaultInjector::instance().arm(
      "dse.sweep.point", Failure(ErrorCode::kNumericalError, "injected"),
      /*skip=*/3, /*count=*/1);
  const SweepOptions serial{ErrorPolicy::kSkipAndRecord, /*jobs=*/1, {}, {}};
  expect_rows_identical(run_sweep(g, {"m"}, evaluate, serial), result, 8);
}

TEST_F(ParallelDeterminismTest, SensitivityBitIdenticalAcrossJobs) {
  const std::vector<std::string> names = {"p0", "p1", "p2", "p3", "p4", "p5"};
  const std::vector<double> baseline = {2.0, 3.0, 5.0, 7.0, 11.0, 13.0};
  const auto objective = [&](const std::vector<double>& p) {
    // Perturbing p3 fails — the failed entry must be identical too.
    if (p[3] != baseline[3]) {
      throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "p3 is rigid"));
    }
    double v = 1.0;
    for (const double x : p) v += std::log(x) * x;
    return v;
  };
  const auto ref = analyze_sensitivity(names, baseline, objective, 0.05,
                                       ErrorPolicy::kSkipAndRecord, /*jobs=*/1);
  ASSERT_EQ(ref.size(), names.size());
  ASSERT_FALSE(ref[3].ok());
  for (const int j : {2, 8}) {
    const auto got = analyze_sensitivity(names, baseline, objective, 0.05,
                                         ErrorPolicy::kSkipAndRecord, j);
    ASSERT_EQ(got.size(), ref.size()) << "jobs=" << j;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].parameter, ref[i].parameter);
      EXPECT_TRUE(bits_equal(got[i].baseline_value, ref[i].baseline_value));
      EXPECT_TRUE(bits_equal(got[i].objective_minus, ref[i].objective_minus))
          << "param " << i << " jobs=" << j;
      EXPECT_TRUE(bits_equal(got[i].objective_plus, ref[i].objective_plus));
      EXPECT_TRUE(bits_equal(got[i].elasticity, ref[i].elasticity))
          << "param " << i << " jobs=" << j;
      ASSERT_EQ(got[i].failure.has_value(), ref[i].failure.has_value());
      if (ref[i].failure.has_value()) {
        EXPECT_EQ(got[i].failure->to_string(), ref[i].failure->to_string());
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, SensitivityFailFastRethrowsFirstParameter) {
  const std::vector<std::string> names = {"p0", "p1", "p2"};
  const std::vector<double> baseline = {2.0, 3.0, 5.0};
  const auto objective = [&](const std::vector<double>& p) {
    if (p[1] != baseline[1]) {
      throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "p1 is rigid"));
    }
    return p[0] + p[1] + p[2];
  };
  for (const int j : {1, 8}) {
    EXPECT_THROW((void)analyze_sensitivity(names, baseline, objective, 0.05,
                                           ErrorPolicy::kFailFast, j),
                 StatusError)
        << "jobs=" << j;
  }
}

TEST_F(ParallelDeterminismTest, FailureSummaryCapsAt20Points) {
  Grid g;
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(static_cast<double>(i));
  g.axis("x", xs);
  const SweepResult result = run_sweep(
      g, {"m"},
      [](const std::vector<double>& p) -> std::vector<double> {
        throw StatusError(
            Failure(ErrorCode::kInfeasiblePoint, "always").with("x", p[0]));
      },
      {ErrorPolicy::kSkipAndRecord, /*jobs=*/1, {}, {}});
  EXPECT_EQ(result.failed_count(), 30u);
  const std::string summary = result.failure_summary();
  EXPECT_NE(summary.find("30 of 30"), std::string::npos);
  EXPECT_NE(summary.find("and 10 more"), std::string::npos);
  // Only the first 20 points are itemized.
  std::size_t lines = 0;
  for (const char ch : summary) lines += (ch == '\n') ? 1 : 0;
  EXPECT_LE(lines, 22u);  // header + 20 points + the "... and N more" tail
}

TEST_F(ParallelDeterminismTest, GridSizeOverflowThrowsNamingAxis) {
  Grid g;
  std::vector<double> huge(1u << 16, 1.0);
  g.axis("a", huge).axis("b", huge).axis("c", huge).axis("d", huge);
  ASSERT_EQ(g.axis_count(), 4u);  // 2^64 points: the product overflows
  try {
    (void)g.size();
    FAIL() << "expected StatusError(kInvalidArgument)";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.failure().code, ErrorCode::kInvalidArgument);
    ASSERT_FALSE(error.failure().context.empty());
    EXPECT_EQ(error.failure().context[0].first, "axis");
    EXPECT_EQ(error.failure().context[0].second, "d");
  }
}

}  // namespace
}  // namespace uld3d::dse

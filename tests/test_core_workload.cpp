#include "uld3d/core/workload.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

TEST(Traffic, SumsSelectedComponents) {
  const nn::Layer conv = nn::make_conv("c", 8, 4, 10, 10, 3, 3);
  TrafficOptions opts;
  opts.output_write_weight = 1.0;
  const double all = layer_traffic_bits(conv, opts);
  opts.count_weights = false;
  const double no_w = layer_traffic_bits(conv, opts);
  EXPECT_DOUBLE_EQ(all - no_w, static_cast<double>(conv.weight_bits(8)));
  opts.count_weights = true;
  opts.count_inputs = false;
  const double no_i = layer_traffic_bits(conv, opts);
  EXPECT_DOUBLE_EQ(all - no_i, static_cast<double>(conv.input_bits(8)));
}

TEST(Traffic, WriteWeightAmplifiesOutputs) {
  const nn::Layer conv = nn::make_conv("c", 8, 4, 10, 10, 3, 3);
  TrafficOptions w1;
  w1.output_write_weight = 1.0;
  TrafficOptions w4;
  w4.output_write_weight = 4.0;
  EXPECT_DOUBLE_EQ(layer_traffic_bits(conv, w4) - layer_traffic_bits(conv, w1),
                   3.0 * static_cast<double>(conv.output_bits(8)));
}

TEST(LayerWorkload, ConvPartitionsByOutputChannels) {
  const nn::Layer conv = nn::make_conv("c", 100, 64, 10, 10, 3, 3);
  const WorkloadPoint w = layer_workload(conv, {}, {});
  EXPECT_EQ(w.max_partitions, 7);  // ceil(100/16)
  // K-partitioning replicates the input map.
  EXPECT_DOUBLE_EQ(w.shared_bits(), static_cast<double>(conv.input_bits(8)));
}

TEST(LayerWorkload, UtilizationInflatesEffectiveOps) {
  // C = 3 with tap packing off: 3/16 of the rows work.
  const nn::Layer conv = nn::make_conv("c", 16, 3, 10, 10, 1, 1);
  PartitionOptions part;
  part.channel_tap_packing = false;
  const WorkloadPoint w = layer_workload(conv, {}, part);
  EXPECT_NEAR(w.f0_ops, static_cast<double>(conv.ops()) / (3.0 / 16.0), 1e-6);
}

TEST(LayerWorkload, TapPackingRecoversUtilization) {
  // C = 3, 3x3 taps: 5 taps pack into 15 of 16 rows.
  const nn::Layer conv = nn::make_conv("c", 16, 3, 10, 10, 3, 3);
  PartitionOptions packed;
  const double util = conv_spatial_utilization(conv.conv(), packed);
  EXPECT_NEAR(util, 15.0 / 16.0, 1e-12);
  PartitionOptions unpacked;
  unpacked.channel_tap_packing = false;
  EXPECT_NEAR(conv_spatial_utilization(conv.conv(), unpacked), 3.0 / 16.0,
              1e-12);
}

TEST(LayerWorkload, DsConvPartitionsByInputChannels) {
  // 1x1 strided projection with C > rows: C-partitioned, nothing shared.
  const nn::Layer ds = nn::make_conv("ds", 128, 64, 28, 28, 1, 1, 2);
  const WorkloadPoint w = layer_workload(ds, {}, {});
  EXPECT_EQ(w.max_partitions, 4);  // ceil(64/16)
  EXPECT_DOUBLE_EQ(w.shared_bits(), 0.0);
}

TEST(LayerWorkload, DsPartitionCanBeDisabled) {
  const nn::Layer ds = nn::make_conv("ds", 128, 64, 28, 28, 1, 1, 2);
  PartitionOptions part;
  part.ds_c_partition = false;
  const WorkloadPoint w = layer_workload(ds, {}, part);
  EXPECT_EQ(w.max_partitions, 8);  // ceil(128/16): back to K-partitioning
}

TEST(LayerWorkload, HybridPartitioningMultipliesBounds) {
  const nn::Layer conv = nn::make_conv("c", 64, 64, 32, 32, 3, 3);
  PartitionOptions part;
  part.hybrid_pixel_partition = true;
  part.spatial_oy = 4;
  const WorkloadPoint w = layer_workload(conv, {}, part);
  EXPECT_EQ(w.max_partitions, 4 * 8);  // ceil(64/16) * ceil(32/4)
  EXPECT_DOUBLE_EQ(w.shared_bits(), 0.0);
}

TEST(LayerWorkload, SerialVectorUnitPinsPoolToOne) {
  const nn::Layer pool = nn::make_pool("p", 64, 10, 10, 2, 2, 2);
  EXPECT_EQ(layer_workload(pool, {}, {}).max_partitions, 1);
  PartitionOptions parallel;
  parallel.serial_vector_unit = false;
  EXPECT_EQ(layer_workload(pool, {}, parallel).max_partitions, 64);
}

TEST(NetworkWorkload, SumsTrafficAndOps) {
  const nn::Network net = nn::make_resnet18();
  const WorkloadPoint total = network_workload(net, {}, {});
  const auto layers = layer_workloads(net, {}, {});
  double f0 = 0.0;
  double d0 = 0.0;
  for (const auto& w : layers) {
    f0 += w.f0_ops;
    d0 += w.d0_bits;
  }
  EXPECT_NEAR(total.f0_ops, f0, 1.0);
  EXPECT_NEAR(total.d0_bits, d0, 1.0);
  EXPECT_EQ(layers.size(), net.size());
}

TEST(NetworkWorkload, EffectivePartitionsBetweenMinAndMax) {
  const nn::Network net = nn::make_resnet18();
  const auto layers = layer_workloads(net, {}, {});
  std::int64_t lo = layers.front().max_partitions;
  std::int64_t hi = lo;
  for (const auto& w : layers) {
    lo = std::min(lo, w.max_partitions);
    hi = std::max(hi, w.max_partitions);
  }
  const WorkloadPoint total = network_workload(net, {}, {});
  EXPECT_GE(total.max_partitions, lo);
  EXPECT_LE(total.max_partitions, hi);
}

TEST(SyntheticWorkload, IntensityRoundTrips) {
  const WorkloadPoint w = synthetic_workload(16.0, 1.0e6, 8);
  EXPECT_DOUBLE_EQ(w.intensity(), 16.0);
  EXPECT_DOUBLE_EQ(w.f0_ops, 16.0e6);
  EXPECT_EQ(w.max_partitions, 8);
  // Default: fully shared (the paper's literal Eq. 4).
  EXPECT_DOUBLE_EQ(w.shared_bits(), w.d0_bits);
}

TEST(SyntheticWorkload, Validation) {
  EXPECT_THROW(synthetic_workload(0.0, 1.0, 1), PreconditionError);
  EXPECT_THROW(synthetic_workload(1.0, 0.0, 1), PreconditionError);
  EXPECT_THROW(synthetic_workload(1.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace uld3d::core

#include "uld3d/core/multi_tier.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

AreaModel area() {
  AreaModel a;
  a.cs_area_um2 = 10.0;
  a.mem_cells_area_um2 = 72.0;   // gamma_cells = 7.2
  a.mem_perif_area_um2 = 14.0;   // gamma_perif = 1.4
  a.bus_area_um2 = 4.0;
  return a;
}

Chip2d chip2d() {
  Chip2d c;
  c.bandwidth_bits_per_cycle = 256.0;
  c.peak_ops_per_cycle = 512.0;
  c.alpha_pj_per_bit = 1.5;
  c.compute_pj_per_op = 1.0;
  c.cs_idle_pj_per_cycle = 2.0;
  c.mem_idle_pj_per_cycle = 10.0;
  return c;
}

TEST(MultiTier, SinglePairMatchesEq2) {
  // Y = 1 is the Sec.-II design: only gamma_cells frees Si area.
  EXPECT_EQ(multi_tier_parallel_cs(area(), 1), 8);
}

TEST(MultiTier, PairsIncludePeripheralsFromYTwo) {
  // Y >= 2: N = Y * floor(1 + g_cells + g_perif) = Y * floor(9.6) = 9Y.
  EXPECT_EQ(multi_tier_parallel_cs(area(), 2), 18);
  EXPECT_EQ(multi_tier_parallel_cs(area(), 3), 27);
}

TEST(MultiTier, RejectsZeroPairs) {
  EXPECT_THROW(multi_tier_parallel_cs(area(), 0), PreconditionError);
}

TEST(MultiTier, BenefitGrowsThenPlateausAtWorkloadBound) {
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(256.0, 1.0e6, 20);  // N# = 20
  double previous = 0.0;
  double plateau = 0.0;
  for (std::int64_t y = 1; y <= 5; ++y) {
    const EdpResult r = evaluate_multi_tier_edp(w, c2, area(), y, 256.0);
    if (y <= 2) {
      EXPECT_GT(r.edp_benefit, previous) << y;  // still scaling
    }
    previous = r.edp_benefit;
    plateau = r.edp_benefit;
  }
  // Once N > N#, speedup is pinned at N#: adding tiers stops helping
  // (and extra idle CSs slightly hurt — Observation 9's plateau).
  const EdpResult y3 = evaluate_multi_tier_edp(w, c2, area(), 3, 256.0);
  EXPECT_NEAR(plateau, y3.edp_benefit, 0.15 * y3.edp_benefit);
}

TEST(MultiTier, HighlyParallelWorkloadKeepsScaling) {
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(256.0, 1.0e6, 100000);
  const double b1 = evaluate_multi_tier_edp(w, c2, area(), 1, 256.0).edp_benefit;
  const double b4 = evaluate_multi_tier_edp(w, c2, area(), 4, 256.0).edp_benefit;
  EXPECT_GT(b4, 3.0 * b1);
}

class TierSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TierSweep, CsCountScalesLinearlyBeyondFirstPair) {
  const std::int64_t y = GetParam();
  if (y < 2) return;
  const std::int64_t per_pair = multi_tier_parallel_cs(area(), 2) / 2;
  EXPECT_EQ(multi_tier_parallel_cs(area(), y), y * per_pair);
}

TEST_P(TierSweep, SpeedupBoundedByCsCount) {
  const std::int64_t y = GetParam();
  const Chip2d c2 = chip2d();
  const WorkloadPoint w = synthetic_workload(256.0, 1.0e6, 1000);
  const EdpResult r = evaluate_multi_tier_edp(w, c2, area(), y, 256.0);
  EXPECT_LE(r.speedup,
            static_cast<double>(multi_tier_parallel_cs(area(), y)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Pairs, TierSweep, ::testing::Range<std::int64_t>(1, 7));

}  // namespace
}  // namespace uld3d::core

// dse sweep-point deduplication: the cross-point computation-reuse layer.
//
// The load-bearing guarantee is BYTE-identity: with a point_key that covers
// every input the evaluator reads, a dedup-on sweep's rows — metrics,
// params, grid_index, failures — are bit-identical to a dedup-off sweep's
// at any jobs count, on both the plain and the checkpoint/resume runner,
// across any interrupt schedule.  Dedup may only change HOW OFTEN the
// evaluator runs (dse.sweep.dedup_unique evaluations instead of grid-size),
// never what any row holds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <random>

#include "uld3d/dse/checkpoint.hpp"
#include "uld3d/dse/sweep.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/map_cache_file.hpp"
#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::dse {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// x and y feed the evaluator; `budget` is an evaluator-BLIND axis (think a
/// thermal budget checked downstream of pricing), so the 2 budget values
/// make every (x, y) pair appear twice: 24 grid points, 12 key classes.
Grid blind_axis_grid() {
  Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0, 4.0})
      .axis("y", {0.5, 1.5, 2.5})
      .axis("budget", {10.0, 20.0});
  return grid;  // 24 points, 12 unique (x, y) evaluations
}

const std::vector<std::string>& metrics2() {
  static const std::vector<std::string> names{"sum", "ratio"};
  return names;
}

/// Deterministic evaluator reading ONLY x and y; x*y > 7 is infeasible so
/// failure fan-out is covered too.  Counts its invocations.
std::vector<double> eval_xy(const std::vector<double>& p,
                            std::atomic<int>& calls) {
  calls.fetch_add(1, std::memory_order_relaxed);
  if (p[0] * p[1] > 7.0) {
    throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "x*y too large")
                          .with("x", p[0])
                          .with("y", p[1]));
  }
  return {p[0] + p[1] / 3.0, p[0] / p[1]};
}

/// Canonical key over exactly the inputs eval_xy reads (NOT the budget).
std::string key_xy(const std::vector<double>& p) {
  char buffer[80];
  std::snprintf(buffer, sizeof buffer, "%.17g,%.17g", p[0], p[1]);
  return buffer;
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  static_assert(sizeof ba == sizeof a);
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

void expect_rows_identical(const std::vector<SweepRow>& a,
                           const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid_index, b[i].grid_index) << "row " << i;
    ASSERT_EQ(a[i].params.size(), b[i].params.size());
    for (std::size_t p = 0; p < a[i].params.size(); ++p) {
      EXPECT_TRUE(bits_equal(a[i].params[p], b[i].params[p]))
          << "row " << i << " param " << p;
    }
    ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      EXPECT_TRUE(bits_equal(a[i].metrics[m], b[i].metrics[m]))
          << "row " << i << " metric " << m;
    }
    ASSERT_EQ(a[i].ok(), b[i].ok()) << "row " << i;
    if (!a[i].ok()) {
      EXPECT_EQ(a[i].failure->code, b[i].failure->code) << "row " << i;
      EXPECT_EQ(a[i].failure->message, b[i].failure->message) << "row " << i;
      EXPECT_EQ(a[i].failure->context, b[i].failure->context) << "row " << i;
    }
  }
}

/// Restores the global dedup lever (tests flip it for A/B runs).
class SweepDedupTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_sweep_dedup_enabled(true);
    set_interrupt_requested(false);
  }
};

TEST_F(SweepDedupTest, RowsBitIdenticalDedupOnVsOffAcrossJobsCounts) {
  const Grid grid = blind_axis_grid();
  for (const int jobs : {1, 8}) {
    std::atomic<int> calls_on{0};
    std::atomic<int> calls_off{0};

    SweepOptions on;
    on.jobs = jobs;
    on.point_key = key_xy;
    set_sweep_dedup_enabled(true);
    const SweepResult with_dedup = run_sweep(
        grid, metrics2(),
        [&](const std::vector<double>& p) { return eval_xy(p, calls_on); },
        on);

    set_sweep_dedup_enabled(false);  // same options object: the LEVER wins
    const SweepResult without_dedup = run_sweep(
        grid, metrics2(),
        [&](const std::vector<double>& p) { return eval_xy(p, calls_off); },
        on);
    set_sweep_dedup_enabled(true);

    expect_rows_identical(with_dedup.rows(), without_dedup.rows());
    EXPECT_EQ(with_dedup.failure_summary(), without_dedup.failure_summary());
    EXPECT_EQ(with_dedup.to_table(4).to_string(),
              without_dedup.to_table(4).to_string());
    EXPECT_EQ(calls_on.load(), 12) << "jobs " << jobs;   // one per key class
    EXPECT_EQ(calls_off.load(), 24) << "jobs " << jobs;  // one per point
  }
}

TEST_F(SweepDedupTest, AliasedFailedRowsCarryTheRepresentativesFailure) {
  const Grid grid = blind_axis_grid();
  std::atomic<int> calls{0};
  SweepOptions options;
  options.jobs = 1;
  options.point_key = key_xy;
  const SweepResult result = run_sweep(
      grid, metrics2(),
      [&](const std::vector<double>& p) { return eval_xy(p, calls); },
      options);
  // x*y > 7 fails for (3, 2.5) and (4, 2.5): 2 key classes x 2 budgets.
  EXPECT_EQ(result.failed_count(), 4u);
  for (const std::size_t i : result.failed_rows()) {
    const SweepRow& row = result.rows()[i];
    ASSERT_TRUE(row.failure.has_value());
    EXPECT_EQ(row.failure->code, ErrorCode::kInfeasiblePoint);
    // The alias keeps its OWN params (including the blind budget axis).
    EXPECT_GT(row.params[0] * row.params[1], 7.0);
  }
}

TEST_F(SweepDedupTest, FailFastThrowsTheSameFirstFailureDedupOnOrOff) {
  const Grid grid = blind_axis_grid();
  std::atomic<int> calls{0};
  const auto evaluate = [&](const std::vector<double>& p) {
    return eval_xy(p, calls);
  };
  const auto first_failure = [&](bool dedup) {
    set_sweep_dedup_enabled(dedup);
    SweepOptions options;
    options.policy = ErrorPolicy::kFailFast;
    options.jobs = 1;
    options.point_key = key_xy;
    try {
      (void)run_sweep(grid, metrics2(), evaluate, options);
    } catch (const StatusError& error) {
      set_sweep_dedup_enabled(true);
      return std::string(error.what());
    }
    set_sweep_dedup_enabled(true);
    return std::string("(no failure)");
  };
  const std::string with_dedup = first_failure(true);
  const std::string without_dedup = first_failure(false);
  EXPECT_NE(with_dedup, "(no failure)");
  EXPECT_EQ(with_dedup, without_dedup);
}

TEST_F(SweepDedupTest, NullPointKeyAndDisabledLeverEvaluateEveryPoint) {
  const Grid grid = blind_axis_grid();
  std::atomic<int> calls{0};
  const auto evaluate = [&](const std::vector<double>& p) {
    return eval_xy(p, calls);
  };
  (void)run_sweep(grid, metrics2(), evaluate, {});  // no point_key
  EXPECT_EQ(calls.load(), 24);

  calls.store(0);
  SweepOptions keyed;
  keyed.point_key = key_xy;
  set_sweep_dedup_enabled(false);
  (void)run_sweep(grid, metrics2(), evaluate, keyed);
  EXPECT_EQ(calls.load(), 24);
}

TEST_F(SweepDedupTest, ResumableDedupMatchesPlainSweepAcrossJobsCounts) {
  const Grid grid = blind_axis_grid();
  std::atomic<int> calls{0};
  const auto evaluate = [&](const std::vector<double>& p) {
    return eval_xy(p, calls);
  };
  set_sweep_dedup_enabled(false);
  const SweepResult reference = run_sweep(grid, metrics2(), evaluate, {});
  set_sweep_dedup_enabled(true);

  for (const int jobs : {1, 8}) {
    calls.store(0);
    ResumableOptions options;
    options.jobs = jobs;
    options.point_key = key_xy;  // no checkpoint_path: dedup + sharding core
    const SweepResult resumable =
        run_sweep_resumable(grid, metrics2(), evaluate, options);
    expect_rows_identical(resumable.rows(), reference.rows());
    EXPECT_EQ(resumable.failure_summary(), reference.failure_summary());
    EXPECT_EQ(calls.load(), 12) << "jobs " << jobs;
  }
}

TEST_F(SweepDedupTest, InterruptAndResumeWithDedupStaysBitIdentical) {
  const Grid grid = blind_axis_grid();
  const std::string path = temp_path("dedup_interrupt.json");
  std::remove(path.c_str());

  std::atomic<int> calls{0};
  set_sweep_dedup_enabled(false);
  const SweepResult reference = run_sweep(
      grid, metrics2(),
      [&](const std::vector<double>& p) { return eval_xy(p, calls); }, {});
  set_sweep_dedup_enabled(true);

  // First run: trip the interrupt latch after 4 evaluations.  jobs=1 so the
  // trip point is deterministic.
  set_interrupt_requested(false);
  int evaluated = 0;
  const auto interrupting_eval = [&](const std::vector<double>& p) {
    if (++evaluated == 4) set_interrupt_requested(true);
    return eval_xy(p, calls);
  };
  ResumableOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  options.checkpoint_interval = 2;
  options.point_key = key_xy;
  EXPECT_THROW(
      (void)run_sweep_resumable(grid, metrics2(), interrupting_eval, options),
      SweepInterrupted);
  set_interrupt_requested(false);

  // Resume: only the remaining key classes evaluate; aliased rows were
  // either checkpointed with their representative or are refilled now.
  calls.store(0);
  options.resume = true;
  const SweepResult resumed = run_sweep_resumable(
      grid, metrics2(),
      [&](const std::vector<double>& p) { return eval_xy(p, calls); },
      options);
  EXPECT_LT(calls.load(), 12);  // the interrupted run's work was kept
  expect_rows_identical(resumed.rows(), reference.rows());
  EXPECT_EQ(resumed.failure_summary(), reference.failure_summary());
  EXPECT_EQ(resumed.to_table(4).to_string(), reference.to_table(4).to_string());
  std::remove(path.c_str());
}

TEST_F(SweepDedupTest, ShardedDedupMergesIntoTheReferenceResult) {
  const Grid grid = blind_axis_grid();
  std::atomic<int> calls{0};
  const auto evaluate = [&](const std::vector<double>& p) {
    return eval_xy(p, calls);
  };
  set_sweep_dedup_enabled(false);
  const SweepResult reference = run_sweep(grid, metrics2(), evaluate, {});
  set_sweep_dedup_enabled(true);

  const std::size_t shard_count = 3;
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string path =
        temp_path("dedup_shard_" + std::to_string(s) + ".json");
    std::remove(path.c_str());
    ResumableOptions options;
    options.jobs = 1;
    options.shard = ShardSpec{s, shard_count};
    options.checkpoint_path = path;
    options.point_key = key_xy;  // dedup within each shard's domain
    (void)run_sweep_resumable(grid, metrics2(), evaluate, options);
    paths.push_back(path);
  }
  const SweepResult merged = merge_shards(grid, metrics2(), "", paths);
  expect_rows_identical(merged.rows(), reference.rows());
  for (const std::string& path : paths) std::remove(path.c_str());
}

// The full reuse stack, crossed: sweep rows through a REAL mapper search
// must be bit-identical across {dedup on/off} x {cold/warm map-cache file}
// x {jobs 1/8}, on randomized layer shapes.  (Interrupt+resume interplay
// has its own test above; refusal coverage lives in
// test_mapper_map_cache_file.)
TEST_F(SweepDedupTest, RandomizedMapperSweepIdenticalAcrossReuseConfigs) {
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<std::int64_t> k_dist(16, 64);
  std::uniform_int_distribution<std::int64_t> c_dist(4, 16);
  std::uniform_int_distribution<std::int64_t> ox_dist(7, 14);
  std::vector<nn::ConvSpec> shapes(4);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    shapes[i].name = "rand" + std::to_string(i);
    shapes[i].k = k_dist(rng);
    shapes[i].c = c_dist(rng);
    shapes[i].ox = ox_dist(rng);
    shapes[i].oy = ox_dist(rng);
    shapes[i].fx = 3;
    shapes[i].fy = 3;
    shapes[i].stride = 1;
  }
  Grid grid;
  grid.axis("shape", {0.0, 1.0, 2.0, 3.0})
      .axis("n_cs", {1.0, 2.0, 4.0})
      .axis("budget", {10.0, 20.0});  // evaluator-blind: 24 points, 12 keys

  mapper::MapCache& cache = mapper::MapCache::instance();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  const mapper::Architecture arch = mapper::make_table2_architecture(1);
  const auto evaluate = [&](const std::vector<double>& p) {
    const auto& conv = shapes[static_cast<std::size_t>(p[0])];
    const mapper::SpatialSearchResult r = mapper::search_spatial(
        conv, arch, {}, static_cast<std::int64_t>(p[1]));
    return std::vector<double>{r.cost.latency_cycles * r.cost.energy_pj,
                               r.improvement()};
  };
  SweepOptions options;
  options.point_key = [](const std::vector<double>& p) {
    char buffer[80];
    std::snprintf(buffer, sizeof buffer, "%.17g,%.17g", p[0], p[1]);
    return std::string(buffer);
  };

  // Reference: dedup off, cold in-memory cache, serial, no store.
  const std::string store = temp_path("dedup_reuse_cross.bin");
  std::remove(store.c_str());
  set_sweep_dedup_enabled(false);
  cache.clear();
  const SweepResult reference =
      run_sweep(grid, metrics2(), evaluate, options);
  ASSERT_GT(mapper::save_map_cache_file(store), 0u);

  for (const bool dedup : {false, true}) {
    for (const bool warm : {false, true}) {
      for (const int jobs : {1, 8}) {
        set_sweep_dedup_enabled(dedup);
        cache.clear();
        if (warm) {
          ASSERT_GT(mapper::load_map_cache_file(store), 0u);
        }
        options.jobs = jobs;
        const SweepResult got =
            run_sweep(grid, metrics2(), evaluate, options);
        SCOPED_TRACE("dedup=" + std::to_string(dedup) +
                     " warm=" + std::to_string(warm) +
                     " jobs=" + std::to_string(jobs));
        expect_rows_identical(got.rows(), reference.rows());
      }
    }
  }
  std::remove(store.c_str());
  cache.clear();
  cache.set_enabled(was_enabled);
}

}  // namespace
}  // namespace uld3d::dse

#include "uld3d/util/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/provenance.hpp"

namespace uld3d {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// The sink is process-global; each test starts closed (disabled) with a
// known run context and leaves it that way.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventSink::instance().close();
    RunContext ctx;
    ctx.run_id = "testrun";
    ctx.shard_index = 0;
    ctx.shard_count = 1;
    set_current_run_context(ctx);
  }
  void TearDown() override {
    EventSink::instance().close();
    std::remove(path_.c_str());
  }

  /// Open the sink on a fresh temp file and return its path.
  const std::string& open_sink(const std::string& name) {
    path_ = temp_path(name);
    std::remove(path_.c_str());
    EXPECT_TRUE(EventSink::instance().open(path_));
    return path_;
  }

  std::string path_;
};

TEST_F(TelemetryTest, DisabledByDefaultAndEmitsNothing) {
  EXPECT_FALSE(EventSink::enabled());
  // No sink open: every emit is a cheap no-op, not a crash.
  EventSink::instance().emit_stage("test.stage", 1.0);
  EventSink::instance().emit_progress(1, 2, 1, 0, 1.0, 1.0, 0);
  EXPECT_FALSE(EventSink::enabled());
}

TEST_F(TelemetryTest, RunContextShardLabel) {
  RunContext ctx;
  ctx.shard_index = 2;
  ctx.shard_count = 8;
  EXPECT_EQ(ctx.shard_label(), "2/8");
  EXPECT_EQ(RunContext{}.shard_label(), "0/1");
}

TEST_F(TelemetryTest, MakeRunContextIsUniquePerCall) {
  const RunContext a = make_run_context(0, 1);
  const RunContext b = make_run_context(3, 4);
  EXPECT_FALSE(a.run_id.empty());
  EXPECT_NE(a.run_id, b.run_id);
  EXPECT_EQ(b.shard_index, 3u);
  EXPECT_EQ(b.shard_count, 4u);
  // Same process identity: the ids differ only by the trailing counter.
  EXPECT_EQ(a.run_id.substr(0, a.run_id.find('-')),
            b.run_id.substr(0, b.run_id.find('-')));
}

TEST_F(TelemetryTest, EveryEventLineIsSchemaStampedJson) {
  const std::string& path = open_sink("telemetry_schema.ndjson");
  EventSink& sink = EventSink::instance();
  EXPECT_TRUE(EventSink::enabled());
  sink.emit_run_start(capture_provenance(), "unit test command");
  sink.emit_sweep_start("fp", 10, {"a", "b"}, {"m"}, 10, 4);
  sink.emit_point_done(3, {1.0, 2.0}, {3.0}, nullptr, 12.5);
  sink.emit_shard_info(0, 1, 10, {});
  sink.emit_checkpoint_flush(5, 10, "ckpt.json");
  sink.emit_progress(5, 10, 4, 1, 2.5, 2.0, 7);
  sink.emit_stage("test.stage", 99.0);
  sink.emit_run_end("ok", 0);
  sink.close();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 8u);
  const std::vector<std::string> expected = {
      "run_start", "sweep_start", "point_done",      "shard_info",
      "checkpoint_flush", "progress", "stage", "run_end"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue event = json_parse(lines[i]);  // throws on bad JSON
    EXPECT_EQ(event.number_or("schema", -1.0),
              static_cast<double>(kTelemetrySchemaVersion));
    EXPECT_EQ(event.at("ev").as_string(), expected[i]) << lines[i];
    EXPECT_EQ(event.at("run").as_string(), "testrun");
    EXPECT_EQ(event.at("shard").as_string(), "0/1");
    EXPECT_TRUE(event.at("ts_ms").is_number());
  }
}

TEST_F(TelemetryTest, PointDoneRoundTripsDoublesBitExactly) {
  const std::string& path = open_sink("telemetry_exact.ndjson");
  // Values that expose sloppy rendering: a non-representable decimal, a
  // huge magnitude, a subnormal, and a negative zero.
  const std::vector<double> params = {0.1, 1e300, -3.5};
  const std::vector<double> metrics = {1.0026739254743031,
                                       std::numeric_limits<double>::denorm_min(),
                                       -0.0};
  EventSink::instance().emit_point_done(7, params, metrics, nullptr, 1.0);
  EventSink::instance().close();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue event = json_parse(lines[0]);
  EXPECT_EQ(static_cast<std::size_t>(event.at("index").as_number()), 7u);
  EXPECT_EQ(event.at("status").as_string(), "ok");
  EXPECT_TRUE(event.at("failure").is_null());
  const JsonValue::Array& p = event.at("params").as_array();
  const JsonValue::Array& m = event.at("metrics").as_array();
  ASSERT_EQ(p.size(), params.size());
  ASSERT_EQ(m.size(), metrics.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(p[i].as_number(), params[i]) << "param " << i;
  }
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(m[i].as_number(), metrics[i]) << "metric " << i;
  }
}

TEST_F(TelemetryTest, FailedPointCarriesStructuredFailure) {
  const std::string& path = open_sink("telemetry_failure.ndjson");
  EventFailure failure;
  failure.code = "kInfeasiblePoint";
  failure.message = "chip does not close \"timing\"";
  failure.context = {{"n_cs", "4"}, {"capacity_mb", "16"}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EventSink::instance().emit_point_done(2, {16.0, 4.0}, {nan}, &failure, 5.0);
  EventSink::instance().close();

  const JsonValue event = json_parse(read_lines(path).at(0));
  EXPECT_EQ(event.at("status").as_string(), "failed");
  const JsonValue& f = event.at("failure");
  EXPECT_EQ(f.at("code").as_string(), "kInfeasiblePoint");
  // The quote in the message survives JSON escaping + parsing.
  EXPECT_EQ(f.at("message").as_string(), "chip does not close \"timing\"");
  const JsonValue::Array& context = f.at("context").as_array();
  ASSERT_EQ(context.size(), 2u);
  EXPECT_EQ(context[0].as_array().at(0).as_string(), "n_cs");
  EXPECT_EQ(context[0].as_array().at(1).as_string(), "4");
  // Failed rows never publish their (all-NaN) metrics.
  EXPECT_EQ(event.find("metrics"), nullptr);
}

TEST_F(TelemetryTest, NonFiniteDursRenderAsStrings) {
  const std::string& path = open_sink("telemetry_nonfinite.ndjson");
  EventSink::instance().emit_stage(
      "test.inf", std::numeric_limits<double>::infinity());
  EventSink::instance().close();
  const JsonValue event = json_parse(read_lines(path).at(0));
  // Non-finite numbers are not JSON; the writer spells them as strings.
  EXPECT_EQ(event.at("dur_us").as_string(), "inf");
}

TEST_F(TelemetryTest, RunEndReportsEmittedCountAndCloseDisables) {
  const std::string& path = open_sink("telemetry_runend.ndjson");
  EventSink& sink = EventSink::instance();
  sink.emit_stage("s1", 1.0);
  sink.emit_stage("s2", 1.0);
  sink.emit_run_end("interrupted", 5);
  sink.close();
  EXPECT_FALSE(EventSink::enabled());

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  const JsonValue end = json_parse(lines.back());
  EXPECT_EQ(end.at("ev").as_string(), "run_end");
  EXPECT_EQ(end.at("status").as_string(), "interrupted");
  EXPECT_EQ(end.number_or("exit_code", -1.0), 5.0);
  // The two stage events preceded run_end.
  EXPECT_EQ(end.number_or("events_emitted", -1.0), 2.0);
}

TEST_F(TelemetryTest, StageTimerEmitsOnlyWhenEnabled) {
  // Disabled: constructing and destroying a StageTimer is a no-op.
  { StageTimer timer("test.stage.disabled"); }
  const std::string& path = open_sink("telemetry_stage.ndjson");
  { StageTimer timer("test.stage.enabled"); }
  EventSink::instance().close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue event = json_parse(lines[0]);
  EXPECT_EQ(event.at("ev").as_string(), "stage");
  EXPECT_EQ(event.at("name").as_string(), "test.stage.enabled");
  EXPECT_GE(event.number_or("dur_us", -1.0), 0.0);
}

TEST_F(TelemetryTest, AppendReopenUnionsRuns) {
  // A resumed run reopens the same file: both runs' events survive.
  const std::string& path = open_sink("telemetry_append.ndjson");
  EventSink::instance().emit_stage("run.one", 1.0);
  EventSink::instance().close();
  EXPECT_TRUE(EventSink::instance().open(path));
  EventSink::instance().emit_stage("run.two", 1.0);
  EventSink::instance().close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json_parse(lines[0]).at("name").as_string(), "run.one");
  EXPECT_EQ(json_parse(lines[1]).at("name").as_string(), "run.two");
}

TEST_F(TelemetryTest, ProgressRateIgnoresResumeSkippedPoints) {
  // Regression guard: a resumed sweep seeds the reporter with thousands of
  // already-done points.  Both the done count and the rate window start at
  // `already_done`, so the first rate sample must reflect only the points
  // evaluated in this process — not (already_done + new) / elapsed, which
  // would report a wildly inflated pts/s and a near-zero ETA after resume.
  ProgressReporter progress("test-resume", 1010, 1000);
  EXPECT_EQ(progress.done(), 1000u);
  EXPECT_EQ(progress.ewma_points_per_sec(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  progress.on_chunk_done(5);
  const double rate = progress.ewma_points_per_sec();
  EXPECT_GT(rate, 0.0);
  // 5 points in ~0.3 s is ~17 pts/s; the buggy version would report ~3350.
  EXPECT_LT(rate, 100.0);
  EXPECT_EQ(progress.done(), 1005u);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/tech/tier_stack.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {
namespace {

TEST(TierStack, M3dStackHasExpectedTiers) {
  const TierStack stack = TierStack::make_m3d_130nm();
  ASSERT_GE(stack.size(), 7u);
  EXPECT_EQ(stack.at(0).kind, TierKind::kSiCmosFeol);
  EXPECT_TRUE(stack.find(TierKind::kRram).has_value());
  EXPECT_TRUE(stack.find(TierKind::kCnfetFeol).has_value());
  // RRAM sits below the CNFET tier (Fig. 4a: selectors above the array).
  EXPECT_LT(*stack.find(TierKind::kRram), *stack.find(TierKind::kCnfetFeol));
}

TEST(TierStack, M3dAllowsCnfetPlacement) {
  const TierStack stack = TierStack::make_m3d_130nm();
  EXPECT_TRUE(stack.at(*stack.find(TierKind::kCnfetFeol)).placement_allowed);
  EXPECT_EQ(stack.placement_tier_count(), 3u);  // Si, RRAM, CNFET
}

TEST(TierStack, BaselineBlocksCnfetPlacementButKeepsRouting) {
  const TierStack stack = TierStack::make_2d_baseline_130nm();
  const auto idx = stack.find(TierKind::kCnfetFeol);
  ASSERT_TRUE(idx.has_value());
  EXPECT_FALSE(stack.at(*idx).placement_allowed);
  EXPECT_TRUE(stack.at(*idx).routing_allowed);  // Sec. II methodology
  EXPECT_EQ(stack.placement_tier_count(), 2u);
}

TEST(TierStack, MetalTiersRouteButDoNotPlace) {
  const TierStack stack = TierStack::make_m3d_130nm();
  for (const auto& tier : stack.tiers()) {
    if (tier.kind == TierKind::kBeolMetal) {
      EXPECT_FALSE(tier.placement_allowed) << tier.name;
      EXPECT_TRUE(tier.routing_allowed) << tier.name;
    }
  }
}

TEST(TierStack, FindMissingKindReturnsNullopt) {
  const TierStack empty;
  EXPECT_FALSE(empty.find(TierKind::kRram).has_value());
}

TEST(TierStack, AtOutOfRangeThrows) {
  const TierStack empty;
  EXPECT_THROW(empty.at(0), PreconditionError);
}

TEST(TierStack, ThermalResistanceAccumulatesUpward) {
  const TierStack stack = TierStack::make_m3d_130nm();
  const double area = 50.0;  // mm^2
  double previous = 0.0;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    const double r = stack.thermal_resistance_to_sink(i, area);
    EXPECT_GT(r, previous);  // strictly increasing with height
    previous = r;
  }
}

TEST(TierStack, ThermalResistanceScalesInverselyWithArea) {
  const TierStack stack = TierStack::make_m3d_130nm();
  const double r_small = stack.thermal_resistance_to_sink(3, 10.0);
  const double r_large = stack.thermal_resistance_to_sink(3, 100.0);
  EXPECT_NEAR(r_small / r_large, 10.0, 1e-9);
}

TEST(TierStack, ThermalRejectsBadInputs) {
  const TierStack stack = TierStack::make_m3d_130nm();
  EXPECT_THROW(stack.thermal_resistance_to_sink(99, 10.0), PreconditionError);
  EXPECT_THROW(stack.thermal_resistance_to_sink(0, 0.0), PreconditionError);
}

TEST(TierStack, PushGrowsStack) {
  TierStack stack;
  stack.push({"X", TierKind::kBeolMetal, false, true, 100.0, 1.0});
  EXPECT_EQ(stack.size(), 1u);
  EXPECT_EQ(stack.at(0).name, "X");
}

TEST(TierKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(TierKind::kSiCmosFeol), "SiCmosFeol");
  EXPECT_STREQ(to_string(TierKind::kBeolMetal), "BeolMetal");
  EXPECT_STREQ(to_string(TierKind::kRram), "Rram");
  EXPECT_STREQ(to_string(TierKind::kCnfetFeol), "CnfetFeol");
}

}  // namespace
}  // namespace uld3d::tech

#!/bin/sh
# Integration test for uld3d-diff, the regression localizer (DESIGN.md §15):
#
#  1. Two identical sweeps diff clean (exit 0) — with tolerances sized for
#     shared-runner noise, same-binary same-grid runs must not self-flag.
#  2. A sweep slowed with the ULD3D_SWEEP_DELAY_MS test hook is flagged
#     (exit 1) and the report names the slowed stage (dse.sweep).
#  3. --json emits a parseable document carrying the same verdict.
#  4. Error contract: usage errors exit 2; malformed input and
#     different-sweep streams exit 3.
#
# Usage: cli_diff.sh /path/to/uld3d_cli /path/to/uld3d-diff
set -u

cli="$1"
diff_tool="$2"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# Generous gates for the identical-runs checks: wall noise on a shared
# runner can be large relative to a fast sweep, so require a 2x blow-up
# AND half a second of absolute excess before calling it a regression.
noise_gates="--time-tol 100% --min-delta-us 500000"

"$cli" sweep --keep-going --jobs 1 --events "$tmpdir/base.ndjson" \
  >/dev/null 2>&1 || fail "base sweep failed"
"$cli" sweep --keep-going --jobs 1 --events "$tmpdir/same.ndjson" \
  >/dev/null 2>&1 || fail "second identical sweep failed"
ULD3D_SWEEP_DELAY_MS=60 "$cli" sweep --keep-going --jobs 1 \
  --events "$tmpdir/slow.ndjson" >/dev/null 2>&1 || fail "slowed sweep failed"

# --- 1. identical runs diff clean -------------------------------------------
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/same.ndjson" $noise_gates \
  > "$tmpdir/clean.txt"
code=$?
[ "$code" -eq 0 ] || fail "identical runs: expected exit 0, got $code"
grep -q 'OK' "$tmpdir/clean.txt" || fail "clean diff does not say OK"

# --- 2. slowed run is flagged and localized ---------------------------------
# Every point slowed too, so the stage finding needs --top headroom to
# stay visible among the per-point rows.
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/slow.ndjson" --top 200 \
  > "$tmpdir/slow.txt"
code=$?
[ "$code" -eq 1 ] || fail "slowed run: expected exit 1, got $code"
grep -q 'dse.sweep' "$tmpdir/slow.txt" \
  || fail "regression table does not name the slowed dse.sweep stage"
grep -q 'REGRESSION' "$tmpdir/slow.txt" || fail "verdict line missing"

# --- 3. --json carries the same verdict -------------------------------------
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/slow.ndjson" --json \
  > "$tmpdir/slow.json"
code=$?
[ "$code" -eq 1 ] || fail "--json slowed run: expected exit 1, got $code"
grep -q '"kind": "diff"' "$tmpdir/slow.json" || fail "json kind missing"
grep -q '"scope": "stage"' "$tmpdir/slow.json" \
  || fail "json regressions lack a stage finding"
grep -q '"dse.sweep"' "$tmpdir/slow.json" \
  || fail "json does not name the slowed stage"
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/same.ndjson" $noise_gates --json \
  > "$tmpdir/clean.json"
code=$?
[ "$code" -eq 0 ] || fail "--json identical runs: expected exit 0, got $code"
grep -q '"regressions": \[\]' "$tmpdir/clean.json" \
  || fail "clean json should carry an empty regressions array"

# --- 4. error contract ------------------------------------------------------
"$diff_tool" >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "no arguments: expected exit 2, got $code"
"$diff_tool" "$tmpdir/base.ndjson" >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "one positional: expected exit 2, got $code"
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/same.ndjson" --bogus \
  >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "unknown flag: expected exit 2, got $code"

echo 'not json' > "$tmpdir/garbage.ndjson"
echo 'still not json' >> "$tmpdir/garbage.ndjson"
"$diff_tool" "$tmpdir/garbage.ndjson" "$tmpdir/same.ndjson" >/dev/null 2>&1
code=$?
[ "$code" -eq 3 ] || fail "malformed input: expected exit 3, got $code"

# A stream with a different sweep fingerprint is a different experiment.
sed 's/"fingerprint": "[^"]*"/"fingerprint": "deadbeef"/' \
  "$tmpdir/same.ndjson" > "$tmpdir/othersweep.ndjson"
"$diff_tool" "$tmpdir/base.ndjson" "$tmpdir/othersweep.ndjson" \
  >/dev/null 2>&1
code=$?
[ "$code" -eq 3 ] || fail "different sweep: expected exit 3, got $code"

if [ "$failures" -ne 0 ]; then
  echo "$failures diff check(s) failed" >&2
  exit 1
fi
echo "all diff checks passed"

#include "uld3d/mapper/architecture.hpp"

#include <gtest/gtest.h>

#include "uld3d/mapper/table2.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::mapper {
namespace {

TEST(Architecture, Table2HasSixNormalizedPoints) {
  const auto archs = table2_architectures();
  ASSERT_EQ(archs.size(), 6u);
  for (const auto& a : archs) {
    // Paper: all normalized to the same PE count and RRAM capacity.
    EXPECT_EQ(a.spatial.total_pes(), 1024) << a.name;
    EXPECT_DOUBLE_EQ(a.rram_capacity_bits, units::mb_to_bits(256.0)) << a.name;
  }
}

TEST(Architecture, Table2SpatialShapesMatchPaper) {
  const auto a1 = make_table2_architecture(1);
  EXPECT_EQ(a1.spatial.k, 16);
  EXPECT_EQ(a1.spatial.c, 16);
  EXPECT_EQ(a1.spatial.ox, 2);
  EXPECT_EQ(a1.spatial.oy, 2);
  const auto a5 = make_table2_architecture(5);
  EXPECT_EQ(a5.spatial.k, 32);
  EXPECT_EQ(a5.spatial.c, 1);
  EXPECT_EQ(a5.spatial.ox, 8);
  EXPECT_EQ(a5.spatial.oy, 4);
}

TEST(Architecture, Table2BufferSizesMatchPaper) {
  const auto a3 = make_table2_architecture(3);
  EXPECT_DOUBLE_EQ(a3.weights.reg.capacity_bits, 128.0 * 8.0);
  EXPECT_DOUBLE_EQ(a3.outputs.reg.capacity_bits, 1024.0 * 8.0);
  EXPECT_DOUBLE_EQ(a3.weights.local.capacity_bits, 0.0);  // '-' entries
  const auto a6 = make_table2_architecture(6);
  EXPECT_DOUBLE_EQ(a6.inputs.local.capacity_bits, units::kb_to_bits(32.0));
  EXPECT_DOUBLE_EQ(a6.weights.global.capacity_bits, units::mb_to_bits(0.5));
}

TEST(Architecture, InvalidIndexThrows) {
  EXPECT_THROW(make_table2_architecture(0), PreconditionError);
  EXPECT_THROW(make_table2_architecture(7), PreconditionError);
}

TEST(Architecture, GlobalSramCountedOnce) {
  const auto a1 = make_table2_architecture(1);
  // All three operand views name the same 2 MB global buffer.
  EXPECT_DOUBLE_EQ(a1.global_sram_bits(), units::mb_to_bits(2.0));
}

TEST(Architecture, CsAreaExcludesGlobalSram) {
  const auto lib = tech::StdCellLibrary::make_si_cmos_130nm();
  auto with_global = make_table2_architecture(2);
  auto without_global = with_global;
  without_global.weights.global.capacity_bits = 0.0;
  without_global.inputs.global.capacity_bits = 0.0;
  without_global.outputs.global.capacity_bits = 0.0;
  EXPECT_DOUBLE_EQ(with_global.cs_area_um2(lib),
                   without_global.cs_area_um2(lib));
}

TEST(Architecture, FatterRegistersGrowTheCs) {
  const auto lib = tech::StdCellLibrary::make_si_cmos_130nm();
  // Arch 3 carries 128B + 1KB per-PE registers: the largest CS of the six.
  const auto archs = table2_architectures();
  const double a3 = archs[2].cs_area_um2(lib);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    EXPECT_GE(a3, archs[i].cs_area_um2(lib)) << archs[i].name;
  }
}

TEST(Architecture, ValidationCatchesBadSpatial) {
  Architecture a = make_table2_architecture(1);
  a.spatial.k = 0;
  EXPECT_THROW(a.validate(), PreconditionError);
}

TEST(Architecture, BufferBitsSumRegsAndLocals) {
  const auto a = make_table2_architecture(4);
  const double regs = (1.0 + 2.0) * 8.0 * 1024.0;  // W:1B + O:2B per PE
  const double locals = units::kb_to_bits(64.0) + units::kb_to_bits(32.0);
  EXPECT_DOUBLE_EQ(a.buffer_bits(), regs + locals);
}

}  // namespace
}  // namespace uld3d::mapper

#!/bin/sh
# Integration test for the sweep checkpoint/restart + sharding flow
# (DESIGN.md §13):
#
#  1. SIGTERM mid-sweep -> exit 5 (interrupted, resumable), then --resume
#     reproduces the uninterrupted run's stdout/stderr byte for byte.
#  2. SIGKILL mid-sweep (no handler can run) -> the last atomic checkpoint
#     is intact and --resume still reproduces the run byte for byte.
#  3. --shard 0/4..3/4 + merge is byte-identical to the unsharded sweep at
#     --jobs 1 and --jobs 8.
#  4. Refusals: resuming against a different config exits 3; a bad --shard
#     spec and a bare merge exit 2; an existing checkpoint without
#     --resume exits 3.
#
# Usage: cli_checkpoint_resume.sh /path/to/uld3d_cli
set -u

cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# The reference: one uninterrupted keep-going sweep (it has failing design
# points, so failure_summary output is part of what must survive resume).
"$cli" sweep --keep-going --jobs 4 \
  > "$tmpdir/ref.out" 2> "$tmpdir/ref.err" || fail "reference sweep failed"

# --- 1. SIGTERM, then resume ------------------------------------------------
# Retry if the sweep outran the signal (the delay is per point, but a loaded
# CI machine can still reorder the sleep against the sweep).
attempt=0
got=0
while [ "$attempt" -lt 5 ]; do
  attempt=$((attempt + 1))
  rm -f "$tmpdir/term.json"
  ULD3D_SWEEP_DELAY_MS=300 "$cli" sweep --keep-going --jobs 2 \
    --checkpoint "$tmpdir/term.json" --checkpoint-interval 1 \
    > "$tmpdir/term.out" 2> "$tmpdir/term.err" &
  pid=$!
  sleep 1
  kill -TERM "$pid" 2>/dev/null
  wait "$pid"
  got=$?
  [ "$got" -eq 5 ] && break
done
if [ "$got" -ne 5 ]; then
  fail "SIGTERM-ed sweep: expected exit 5 (interrupted, resumable), got $got"
fi
[ -f "$tmpdir/term.json" ] || fail "SIGTERM left no checkpoint file"

"$cli" sweep --keep-going --jobs 4 --checkpoint "$tmpdir/term.json" --resume \
  > "$tmpdir/term_resumed.out" 2> "$tmpdir/term_resumed.err" \
  || fail "resume after SIGTERM failed"
cmp -s "$tmpdir/ref.out" "$tmpdir/term_resumed.out" \
  || fail "stdout after SIGTERM+resume differs from uninterrupted run"
cmp -s "$tmpdir/ref.err" "$tmpdir/term_resumed.err" \
  || fail "stderr after SIGTERM+resume differs from uninterrupted run"

# --- 2. SIGKILL, then resume ------------------------------------------------
# SIGKILL can't be caught, so only the periodic atomic flushes protect the
# state.  Retry in case the sweep finishes before the kill lands (slow CI).
attempt=0
killed=no
while [ "$attempt" -lt 5 ]; do
  attempt=$((attempt + 1))
  rm -f "$tmpdir/kill.json"
  ULD3D_SWEEP_DELAY_MS=300 "$cli" sweep --keep-going --jobs 2 \
    --checkpoint "$tmpdir/kill.json" --checkpoint-interval 1 \
    > /dev/null 2>&1 &
  pid=$!
  sleep 1
  if kill -KILL "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null
    killed=yes
    break
  fi
  wait "$pid" 2>/dev/null  # finished before the kill; try again
done
if [ "$killed" = yes ]; then
  [ -f "$tmpdir/kill.json" ] || fail "SIGKILL run left no checkpoint flush"
  "$cli" sweep --keep-going --jobs 4 --checkpoint "$tmpdir/kill.json" \
    --resume > "$tmpdir/kill_resumed.out" 2> "$tmpdir/kill_resumed.err" \
    || fail "resume after SIGKILL failed"
  cmp -s "$tmpdir/ref.out" "$tmpdir/kill_resumed.out" \
    || fail "stdout after SIGKILL+resume differs from uninterrupted run"
  cmp -s "$tmpdir/ref.err" "$tmpdir/kill_resumed.err" \
    || fail "stderr after SIGKILL+resume differs from uninterrupted run"
else
  echo "note: sweep always finished before SIGKILL; skipping kill check" >&2
fi

# --- 3. shard + merge equivalence at --jobs 1 and 8 -------------------------
for jobs in 1 8; do
  for i in 0 1 2 3; do
    "$cli" sweep --keep-going --jobs "$jobs" --shard "$i/4" \
      --checkpoint "$tmpdir/shard_${jobs}_${i}.json" > /dev/null 2>&1 \
      || fail "shard $i/4 at --jobs $jobs failed"
  done
  "$cli" merge "$tmpdir/shard_${jobs}_0.json" "$tmpdir/shard_${jobs}_1.json" \
    "$tmpdir/shard_${jobs}_2.json" "$tmpdir/shard_${jobs}_3.json" \
    > "$tmpdir/merged_$jobs.out" 2> "$tmpdir/merged_$jobs.err" \
    || fail "merge at --jobs $jobs failed"
  cmp -s "$tmpdir/ref.out" "$tmpdir/merged_$jobs.out" \
    || fail "merged stdout at --jobs $jobs differs from unsharded sweep"
  cmp -s "$tmpdir/ref.err" "$tmpdir/merged_$jobs.err" \
    || fail "merged stderr at --jobs $jobs differs from unsharded sweep"
done

# --- 4. refusals ------------------------------------------------------------
# Existing checkpoint without --resume: refuse to clobber completed work.
"$cli" sweep --keep-going --checkpoint "$tmpdir/shard_1_0.json" \
  > /dev/null 2>&1
[ $? -eq 3 ] || fail "checkpoint without --resume should exit 3"

# Checkpoint from a different sweep identity (other network): refused.
"$cli" sweep --keep-going --network alexnet \
  --checkpoint "$tmpdir/term.json" --resume > /dev/null 2>&1
[ $? -eq 3 ] || fail "fingerprint mismatch on resume should exit 3"

# Same identity mismatch caught at merge time too.
"$cli" merge --network alexnet "$tmpdir/shard_1_0.json" \
  "$tmpdir/shard_1_1.json" "$tmpdir/shard_1_2.json" \
  "$tmpdir/shard_1_3.json" > /dev/null 2>&1
[ $? -eq 3 ] || fail "fingerprint mismatch on merge should exit 3"

# Truncated checkpoint: clean config error, not a crash.
head -c 60 "$tmpdir/term.json" > "$tmpdir/trunc.json"
"$cli" merge "$tmpdir/trunc.json" > /dev/null 2>&1
[ $? -eq 3 ] || fail "truncated checkpoint should exit 3"

# Usage errors.
"$cli" sweep --shard 4/4 > /dev/null 2>&1
[ $? -eq 2 ] || fail "--shard 4/4 should exit 2"
"$cli" sweep --shard banana > /dev/null 2>&1
[ $? -eq 2 ] || fail "--shard banana should exit 2"
"$cli" merge > /dev/null 2>&1
[ $? -eq 2 ] || fail "bare merge should exit 2"
"$cli" sweep --checkpoint-interval 0 > /dev/null 2>&1
[ $? -eq 2 ] || fail "--checkpoint-interval 0 should exit 2"

if [ "$failures" -ne 0 ]; then
  echo "$failures checkpoint/resume check(s) failed" >&2
  exit 1
fi
echo "cli_checkpoint_resume: all checks passed"
exit 0

#include "uld3d/mapper/temporal_mapping.hpp"

#include <gtest/gtest.h>

#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/layer.hpp"

namespace uld3d::mapper {
namespace {

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx, std::int64_t stride = 1) {
  nn::ConvSpec s;
  s.name = "c";
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = stride;
  return s;
}

TEST(SpatialUtilization, PerfectFit) {
  const auto arch = make_table2_architecture(3);  // (32, 32)
  EXPECT_DOUBLE_EQ(spatial_utilization(conv(64, 64, 14, 3), arch.spatial), 1.0);
}

TEST(SpatialUtilization, SmallChannelsUnderfill) {
  const auto arch = make_table2_architecture(3);
  EXPECT_NEAR(spatial_utilization(conv(96, 3, 55, 11), arch.spatial),
              3.0 / 32.0, 1e-12);
}

TEST(SpatialUtilization, RaggedDimensions) {
  const auto arch = make_table2_architecture(3);
  // K = 48 on k = 32: 48/64 fill.
  EXPECT_NEAR(spatial_utilization(conv(48, 32, 14, 3), arch.spatial), 0.75,
              1e-12);
}

TEST(Mappings, ThreeCandidatesAlwaysProduced) {
  for (int i = 1; i <= 6; ++i) {
    const auto arch = make_table2_architecture(i);
    const auto candidates = candidate_mappings(conv(256, 96, 27, 5), arch);
    ASSERT_EQ(candidates.size(), 3u) << arch.name;
    EXPECT_EQ(candidates[0].order, "weight-outer");
    EXPECT_EQ(candidates[1].order, "input-outer");
    EXPECT_EQ(candidates[2].order, "pixel-tiled");
  }
}

TEST(Mappings, ComputeCyclesEqualAcrossCandidates) {
  const auto arch = make_table2_architecture(1);
  const auto candidates = candidate_mappings(conv(256, 96, 27, 5), arch);
  for (const auto& m : candidates) {
    EXPECT_DOUBLE_EQ(m.compute_cycles, candidates[0].compute_cycles);
  }
}

TEST(Mappings, WeightsEnterChipAtLeastOnce) {
  const auto arch = make_table2_architecture(1);
  const auto spec = conv(256, 96, 27, 5);
  const double w_bits =
      static_cast<double>(spec.k * spec.c * spec.fx * spec.fy * 8);
  for (const auto& m : candidate_mappings(spec, arch)) {
    EXPECT_GE(m.weights.rram_read_bits, w_bits - 1.0) << m.order;
  }
}

TEST(Mappings, OutputsWrittenExactlyOnce) {
  const auto arch = make_table2_architecture(1);
  const auto spec = conv(256, 96, 27, 5);
  const double o_bits = static_cast<double>(spec.k * spec.ox * spec.oy * 8);
  for (const auto& m : candidate_mappings(spec, arch)) {
    EXPECT_DOUBLE_EQ(m.outputs.rram_write_bits, o_bits) << m.order;
  }
}

TEST(Mappings, InputOuterRefetchesLessThanWeightOuter) {
  // Order B trades psum residency for fewer input passes.
  const auto arch = make_table2_architecture(1);
  const auto spec = conv(512, 64, 28, 3);  // k_outer = 32 -> heavy A refetch
  const auto candidates = candidate_mappings(spec, arch);
  const double reads_a = candidates[0].inputs.rram_read_bits +
                         candidates[0].inputs.global_bits +
                         candidates[0].inputs.local_bits;
  const double reads_b = candidates[1].inputs.rram_read_bits +
                         candidates[1].inputs.global_bits +
                         candidates[1].inputs.local_bits;
  EXPECT_LT(reads_b, reads_a);
}

TEST(Mappings, PixelTilingRefetchesWeights) {
  // Arch 2 has no local output SRAM: a big-psum layer forces pixel tiling to
  // refetch weights multiple times.
  const auto arch = make_table2_architecture(2);
  const auto spec = conv(512, 512, 56, 3);
  const auto candidates = candidate_mappings(spec, arch);
  const double w_bits =
      static_cast<double>(spec.k * spec.c * spec.fx * spec.fy * 8);
  EXPECT_GT(candidates[2].weights.rram_read_bits, 1.5 * w_bits);
}

TEST(Mappings, RegisterTrafficCountsEveryMac) {
  const auto arch = make_table2_architecture(1);
  const auto spec = conv(64, 64, 14, 3);
  const double macs =
      static_cast<double>(spec.k * spec.c * spec.ox * spec.oy * spec.fx * spec.fy);
  for (const auto& m : candidate_mappings(spec, arch)) {
    EXPECT_GE(m.weights.reg_bits, macs * 8.0 - 1.0);
    EXPECT_GE(m.outputs.reg_bits, 2.0 * macs * 24.0 - 1.0);  // psum rd+wr
  }
}

TEST(Mappings, UtilizationPropagated) {
  const auto arch = make_table2_architecture(3);
  const auto spec = conv(96, 3, 55, 11);
  for (const auto& m : candidate_mappings(spec, arch)) {
    EXPECT_NEAR(m.utilization, 3.0 / 32.0, 1e-12);
  }
}

}  // namespace
}  // namespace uld3d::mapper

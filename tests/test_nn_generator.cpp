#include "uld3d/nn/generator.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {
namespace {

TEST(Generator, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  const Network na = random_network(a);
  const Network nb = random_network(b);
  ASSERT_EQ(na.size(), nb.size());
  EXPECT_EQ(na.total_macs(), nb.total_macs());
  EXPECT_EQ(na.total_weights(), nb.total_weights());
}

TEST(Generator, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(random_network(a).total_macs(), random_network(b).total_macs());
}

TEST(Generator, RespectsChannelCap) {
  GeneratorOptions opt;
  opt.max_channels = 64;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Network net = random_network(rng, opt);
    for (const auto& l : net.layers()) {
      if (l.is_conv()) {
        EXPECT_LE(l.conv().k, 1000) << l.name();  // classifier may exceed
        if (l.name() != "FC") EXPECT_LE(l.conv().k, 64) << l.name();
      }
    }
  }
}

TEST(Generator, ClassifierOptional) {
  GeneratorOptions opt;
  opt.end_with_classifier = false;
  Rng rng(3);
  const Network net = random_network(rng, opt);
  EXPECT_NE(net.layer(net.size() - 1).name(), "FC");
}

TEST(Generator, Validation) {
  GeneratorOptions bad;
  bad.min_stages = 3;
  bad.max_stages = 2;
  Rng rng(1);
  EXPECT_THROW(random_network(rng, bad), PreconditionError);
}

class GeneratorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorFuzz, GeneratedNetworksAreStructurallyValid) {
  Rng rng(GetParam());
  const Network net = random_network(rng);
  EXPECT_GE(net.size(), 3u);
  EXPECT_GT(net.total_macs(), 0);
  std::int64_t previous_channels = 3;
  for (const auto& l : net.layers()) {
    EXPECT_GT(l.ops(), 0) << l.name();
    if (l.is_conv() && l.name() != "FC" &&
        l.name().find("DS") == std::string::npos) {
      // The main path chains channel counts.
      EXPECT_EQ(l.conv().c, previous_channels) << l.name();
      previous_channels = l.conv().k;
    }
  }
}

TEST_P(GeneratorFuzz, SpatialSizesNeverGrow) {
  Rng rng(GetParam());
  const Network net = random_network(rng);
  std::int64_t previous = 1 << 20;
  for (const auto& l : net.layers()) {
    if (!l.is_conv()) continue;
    EXPECT_LE(l.conv().ox, previous) << l.name();
    previous = std::max<std::int64_t>(1, l.conv().ox);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233, 377, 610, 987));

}  // namespace
}  // namespace uld3d::nn

#include "uld3d/sim/buffer_analysis.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/pdk.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::sim {
namespace {

AcceleratorConfig cfg() {
  return AcceleratorConfig::baseline_2d(tech::FoundryM3dPdk::make_130nm());
}

// The Sec.-II CS carries 96 KB of SRAM buffers.
constexpr double kBudgetBits = 96.0 * 8.0 * 1024.0;

TEST(BufferAnalysis, SmallLayerHoldsFullInputSlice) {
  // A late 7x7 layer's input slice is tiny: no row streaming needed.
  const nn::Layer conv = nn::make_conv("late", 512, 512, 7, 7, 3, 3);
  const auto req = analyze_layer_buffers(conv, cfg(), kBudgetBits);
  EXPECT_FALSE(req.row_streamed);
  EXPECT_GT(req.input_bits, 0.0);
  EXPECT_DOUBLE_EQ(req.weight_bits, 2.0 * 16 * 16 * 8);
  EXPECT_LE(req.total_bits(), kBudgetBits);
}

TEST(BufferAnalysis, EarlyLayerMustRowStream) {
  // CONV1's 224x224 input slice cannot fit 96 KB: row-chunked streaming.
  const nn::Layer conv = nn::make_conv("CONV1", 64, 3, 112, 112, 7, 7, 2);
  const auto req = analyze_layer_buffers(conv, cfg(), kBudgetBits);
  EXPECT_TRUE(req.row_streamed);
  EXPECT_LE(req.total_bits(), kBudgetBits);
}

TEST(BufferAnalysis, VectorLayersNeedOnlyFifos) {
  const nn::Layer pool = nn::make_pool("p", 512, 7, 7, 7, 7, 7);
  const auto req = analyze_layer_buffers(pool, cfg(), kBudgetBits);
  EXPECT_DOUBLE_EQ(req.weight_bits, 0.0);
  EXPECT_LT(req.total_bits(), kBudgetBits / 10.0);
}

TEST(BufferAnalysis, BudgetValidation) {
  const nn::Layer conv = nn::make_conv("c", 16, 16, 4, 4, 1, 1);
  EXPECT_THROW(analyze_layer_buffers(conv, cfg(), 0.0), PreconditionError);
}

class ZooBufferFit : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooBufferFit, EveryModelFitsTheCaseStudySram) {
  // The paper's ~1/20th-SRAM design point must actually be schedulable:
  // with row-chunked streaming, every layer of every zoo model fits the
  // 96 KB per-CS budget.
  const nn::Network net = nn::make_network(GetParam());
  const auto report = analyze_network_buffers(net, cfg(), kBudgetBits);
  EXPECT_TRUE(report.fits(kBudgetBits))
      << report.peak_layer << " needs "
      << report.peak_bits / units::kBitsPerKB << " KB";
  EXPECT_EQ(report.layers.size(), net.size());
}

TEST_P(ZooBufferFit, SomeEarlyLayersStream) {
  // ImageNet stems always exceed the small buffers; streaming must engage
  // at least once per model.
  const nn::Network net = nn::make_network(GetParam());
  const auto report = analyze_network_buffers(net, cfg(), kBudgetBits);
  EXPECT_GE(report.row_streamed_layers, 1u);
}

INSTANTIATE_TEST_SUITE_P(Models, ZooBufferFit,
                         ::testing::Values("alexnet", "vgg16", "resnet18",
                                           "resnet50", "resnet152"));

}  // namespace
}  // namespace uld3d::sim

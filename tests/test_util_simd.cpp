// Unit tests for the util/simd reduction kernels: the AVX2 and scalar paths
// must agree element-for-element with a naive serial reference, including
// the argmin tie-break ("strict <, first of equals wins") and NaN/inf
// handling that the mapper's determinism contract depends on.
#include "uld3d/util/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "uld3d/util/batch.hpp"
#include "uld3d/util/rng.hpp"

namespace uld3d::simd {
namespace {

class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { set_force_scalar(false); }
  void TearDown() override { set_force_scalar(false); }
};

/// Serial reference for argmin_strict: first index whose value is strictly
/// below everything before it; n when no element beats +inf (all NaN/inf).
std::size_t argmin_ref(const double* v, std::size_t n) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t win = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] < best) {
      best = v[i];
      win = i;
    }
  }
  return win;
}

TEST_F(SimdTest, ArgminRandomizedMatchesSerialReference) {
  Rng rng(1);
  util::AlignedVector<double> v;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(97);
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Coarse quantization manufactures ties so the first-wins rule is
      // actually exercised, not just the strict minimum.
      v[i] = static_cast<double>(rng.below(16)) * 0.25;
    }
    const std::size_t ref = argmin_ref(v.data(), n);
    EXPECT_EQ(argmin_strict(v.data(), n), ref) << "n=" << n;
    set_force_scalar(true);
    EXPECT_EQ(argmin_strict(v.data(), n), ref) << "n=" << n << " (scalar)";
    set_force_scalar(false);
  }
}

TEST_F(SimdTest, ArgminEdgeCases) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  EXPECT_EQ(argmin_strict(nullptr, 0), 0u);

  // All-inf and all-NaN: nothing beats the +inf seed, so the "no winner"
  // sentinel n comes back (the mapper maps it to a default LayerCost).
  util::AlignedVector<double> v;
  v.resize(16);
  for (std::size_t i = 0; i < 16; ++i) v[i] = inf;
  EXPECT_EQ(argmin_strict(v.data(), 16), 16u);
  for (std::size_t i = 0; i < 16; ++i) v[i] = nan;
  EXPECT_EQ(argmin_strict(v.data(), 16), 16u);

  // NaNs interleaved with finite values are skipped, not propagated.
  for (std::size_t i = 0; i < 16; ++i) v[i] = (i % 2 == 0) ? nan : 100.0 - i;
  EXPECT_EQ(argmin_strict(v.data(), 16), 15u);

  // -0.0 vs 0.0: not strictly ordered, so the first occurrence wins.
  for (std::size_t i = 0; i < 16; ++i) v[i] = (i % 2 == 0) ? 0.0 : -0.0;
  EXPECT_EQ(argmin_strict(v.data(), 16), 0u);

  // -inf is a legitimate minimum.
  for (std::size_t i = 0; i < 16; ++i) v[i] = 1.0;
  v[9] = -inf;
  EXPECT_EQ(argmin_strict(v.data(), 16), 9u);

  // Tie at the strict minimum across lane boundaries: first one wins.
  for (std::size_t i = 0; i < 16; ++i) v[i] = 5.0;
  v[3] = -7.0;
  v[11] = -7.0;
  EXPECT_EQ(argmin_strict(v.data(), 16), 3u);
  set_force_scalar(true);
  EXPECT_EQ(argmin_strict(v.data(), 16), 3u);
}

TEST_F(SimdTest, PrefixSumRandomizedMatchesSerialReference) {
  Rng rng(2);
  util::AlignedVector<std::uint32_t> in;
  util::AlignedVector<std::uint32_t> out;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(130);
    in.resize(n);
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint32_t>(rng.below(1000));
    }
    prefix_sum_u32(in.data(), out.data(), n);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      ASSERT_EQ(out[i], acc) << "n=" << n << " i=" << i;
    }
    set_force_scalar(true);
    prefix_sum_u32(in.data(), out.data(), n);
    set_force_scalar(false);
    acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += in[i];
      ASSERT_EQ(out[i], acc) << "scalar n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdTest, PrefixSumWrapsModulo32Bits) {
  // Unsigned overflow is defined; the vector path must wrap identically.
  util::AlignedVector<std::uint32_t> in;
  util::AlignedVector<std::uint32_t> out;
  in.resize(32);
  out.resize(32);
  for (std::size_t i = 0; i < 32; ++i) in[i] = 0x90000000u;
  prefix_sum_u32(in.data(), out.data(), 32);
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    acc += in[i];
    ASSERT_EQ(out[i], acc) << i;
  }
}

TEST_F(SimdTest, PrefixMaxRandomizedMatchesSerialReference) {
  Rng rng(3);
  util::AlignedVector<std::int32_t> in;
  util::AlignedVector<std::int32_t> out;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.below(130);
    in.resize(n);
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      // The phys use case: -1 for empty columns, the column index otherwise.
      in[i] = rng.below(4) == 0 ? -1 : static_cast<std::int32_t>(i);
    }
    prefix_max_i32(in.data(), out.data(), n);
    std::int32_t acc = std::numeric_limits<std::int32_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      acc = std::max(acc, in[i]);
      ASSERT_EQ(out[i], acc) << "n=" << n << " i=" << i;
    }
    set_force_scalar(true);
    prefix_max_i32(in.data(), out.data(), n);
    set_force_scalar(false);
    acc = std::numeric_limits<std::int32_t>::min();
    for (std::size_t i = 0; i < n; ++i) {
      acc = std::max(acc, in[i]);
      ASSERT_EQ(out[i], acc) << "scalar n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdTest, PrefixMaxHandlesInt32Extremes) {
  util::AlignedVector<std::int32_t> in;
  util::AlignedVector<std::int32_t> out;
  in.resize(24);
  out.resize(24);
  const std::int32_t lo = std::numeric_limits<std::int32_t>::min();
  const std::int32_t hi = std::numeric_limits<std::int32_t>::max();
  for (std::size_t i = 0; i < 24; ++i) in[i] = lo;
  in[5] = hi;
  prefix_max_i32(in.data(), out.data(), 24);
  for (std::size_t i = 0; i < 24; ++i) {
    ASSERT_EQ(out[i], i < 5 ? lo : hi) << i;
  }
}

TEST_F(SimdTest, DispatchReportingIsConsistent) {
  // isa_name and avx2_active must agree, and force_scalar must flip both.
  // "scalar-forced" means the CPU could have run AVX2 but something (env or
  // override) suppressed it; plain "scalar" means the CPU cannot.
  const bool avx2 = avx2_active();
  if (avx2) {
    EXPECT_STREQ(isa_name(), "avx2");
  } else {
    EXPECT_STREQ(isa_name(), cpu_has_avx2() ? "scalar-forced" : "scalar");
  }
  set_force_scalar(true);
  EXPECT_FALSE(avx2_active());
  EXPECT_STREQ(isa_name(), cpu_has_avx2() ? "scalar-forced" : "scalar");
  set_force_scalar(false);
  EXPECT_EQ(avx2_active(), avx2);
}

TEST_F(SimdTest, AlignedVectorContract) {
  util::AlignedVector<double> v;
  EXPECT_EQ(v.size(), 0u);
  v.resize(7);
  EXPECT_EQ(v.size(), 7u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                util::kBatchAlignment,
            0u);
  double* p = v.data();
  v.resize(3);  // shrink never reallocates
  EXPECT_EQ(v.data(), p);
  v.resize(7);  // regrow within capacity never reallocates
  EXPECT_EQ(v.data(), p);
  v.resize(4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                util::kBatchAlignment,
            0u);
  util::AlignedVector<double> w = std::move(v);
  EXPECT_EQ(w.size(), 4096u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
}

}  // namespace
}  // namespace uld3d::simd

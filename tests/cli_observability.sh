#!/bin/sh
# Exercises the observability surface of uld3d_cli:
#   --trace FILE    Chrome trace_event JSON
#   --metrics FILE  flat metrics JSON / CSV
#   --profile       human-readable summary tables on stdout
#   ULD3D_TRACE     env var mirror of --trace
# Usage: cli_observability.sh /path/to/uld3d_cli
set -u

cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

json_ok() {
  # Validate with a real parser when python3 is around; fall back to a
  # structural grep so the test still runs on minimal images.
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null 2>&1
  else
    grep -q '{' "$1" && grep -q '}' "$1"
  fi
}

# --trace/--metrics: run succeeds and both files are non-empty, valid JSON.
trace="$tmpdir/trace.json"
metrics="$tmpdir/metrics.json"
if ! "$cli" sweep --keep-going --trace "$trace" --metrics "$metrics" \
    >"$tmpdir/sweep.out" 2>"$tmpdir/sweep.err"; then
  fail "sweep --trace/--metrics exited non-zero"
fi
[ -s "$trace" ] || fail "trace file missing or empty"
[ -s "$metrics" ] || fail "metrics file missing or empty"
json_ok "$trace" || fail "trace file is not valid JSON"
json_ok "$metrics" || fail "metrics file is not valid JSON"
grep -q '"traceEvents"' "$trace" || fail "trace file lacks traceEvents"
grep -q '"ph": "X"' "$trace" || fail "trace file lacks complete events"
grep -q 'dse.sweep.point' "$trace" || fail "trace file lacks per-point spans"
grep -q '"metrics"' "$metrics" || fail "metrics file lacks metrics array"
grep -q 'dse.sweep.points' "$metrics" || fail "metrics file lacks sweep series"
series="$(grep -c '"name"' "$metrics")"
if [ "$series" -lt 10 ]; then
  fail "expected >= 10 metric series, got $series"
fi

# .csv extension selects the CSV exporter.  (--keep-going throughout: the
# default grid contains naturally infeasible points.)
csv="$tmpdir/metrics.csv"
"$cli" sweep --keep-going --metrics "$csv" >/dev/null 2>&1 \
  || fail "sweep --metrics csv failed"
head -n 1 "$csv" | grep -q '^name,kind,value,count,sum,p50,p95,p99$' \
  || fail "metrics CSV header wrong: $(head -n 1 "$csv")"

# --profile: summary tables land on stdout.
profile_out="$("$cli" sweep --keep-going --profile 2>/dev/null)"
case "$profile_out" in
  *"Span summary"*) : ;;
  *) fail "--profile missing span summary table" ;;
esac
case "$profile_out" in
  *"Run metrics"*) : ;;
  *) fail "--profile missing run metrics table" ;;
esac

# ULD3D_TRACE mirrors --trace.
envtrace="$tmpdir/envtrace.json"
env ULD3D_TRACE="$envtrace" "$cli" compare --network alexnet >/dev/null 2>&1 \
  || fail "compare under ULD3D_TRACE exited non-zero"
[ -s "$envtrace" ] || fail "ULD3D_TRACE produced no trace file"
json_ok "$envtrace" || fail "ULD3D_TRACE trace is not valid JSON"
grep -q 'sim.network' "$envtrace" || fail "env trace lacks sim spans"

# --events: NDJSON stream with a run_start/run_end envelope, RunId labels
# shared with the metrics export (DESIGN.md §14).
events="$tmpdir/events.ndjson"
evmetrics="$tmpdir/evmetrics.json"
"$cli" sweep --keep-going --events "$events" --metrics "$evmetrics" \
  >/dev/null 2>&1 || fail "sweep --events failed"
[ -s "$events" ] || fail "events file missing or empty"
grep -q '"ev": "run_start"' "$events" || fail "events lack run_start"
grep -q '"ev": "sweep_start"' "$events" || fail "events lack sweep_start"
grep -q '"ev": "point_done"' "$events" || fail "events lack point_done"
grep -q '"ev": "run_end"' "$events" || fail "events lack run_end"
grep -q '"status": "failed"' "$events" \
  || fail "events lack failed point_done rows (grid has infeasible points)"
# Every line is one JSON object (NDJSON), schema-stamped.
lines="$(wc -l < "$events")"
objs="$(grep -c '^{"schema": 1, "ev": ' "$events")"
[ "$lines" = "$objs" ] || fail "events file is not schema-stamped NDJSON"
# The metrics export carries the same RunId as the event stream.
run_id="$(sed -n 's/.*"run": "\([^"]*\)".*/\1/p' "$events" | head -n 1)"
[ -n "$run_id" ] || fail "events carry no run id"
grep -q "\"run_id\": \"$run_id\"" "$evmetrics" \
  || fail "metrics export run_id does not match the event stream"

# ULD3D_EVENTS mirrors --events (datasheet exercises the phys-flow stage
# timers as well as the run envelope).
envevents="$tmpdir/envevents.ndjson"
env ULD3D_EVENTS="$envevents" "$cli" datasheet --network alexnet \
  >/dev/null 2>&1 || fail "datasheet under ULD3D_EVENTS exited non-zero"
[ -s "$envevents" ] || fail "ULD3D_EVENTS produced no events file"
grep -q '"ev": "run_end"' "$envevents" || fail "env events lack run_end"
grep -q '"ev": "stage"' "$envevents" || fail "env events lack stage timings"

# --progress: a live line on stderr, nothing extra on stdout.
"$cli" sweep --keep-going --progress >"$tmpdir/prog.out" 2>"$tmpdir/prog.err" \
  || fail "sweep --progress failed"
grep -q 'pts/s' "$tmpdir/prog.err" || fail "--progress wrote no rate line"
cmp -s "$tmpdir/prog.out" "$tmpdir/sweep.out" \
  || fail "--progress changed stdout"

# Disabled by default: no trace/metrics files appear, nothing extra on stdout.
plain_out="$(cd "$tmpdir" && "$cli" sweep --keep-going 2>/dev/null)"
case "$plain_out" in
  *"Span summary"*) fail "profile table printed without --profile" ;;
  *) : ;;
esac

if [ "$failures" -ne 0 ]; then
  echo "$failures observability check(s) failed" >&2
  exit 1
fi
echo "all observability checks passed"

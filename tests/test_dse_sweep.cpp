#include "uld3d/dse/sweep.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::dse {
namespace {

Grid grid2x3() {
  Grid g;
  g.axis("a", {1.0, 2.0}).axis("b", {10.0, 20.0, 30.0});
  return g;
}

TEST(Grid, SizeIsProduct) {
  EXPECT_EQ(grid2x3().size(), 6u);
  EXPECT_EQ(Grid{}.size(), 0u);
}

TEST(Grid, RowMajorEnumeration) {
  const Grid g = grid2x3();
  // Last axis varies fastest.
  EXPECT_EQ(g.point(0), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(g.point(1), (std::vector<double>{1.0, 20.0}));
  EXPECT_EQ(g.point(2), (std::vector<double>{1.0, 30.0}));
  EXPECT_EQ(g.point(3), (std::vector<double>{2.0, 10.0}));
  EXPECT_EQ(g.point(5), (std::vector<double>{2.0, 30.0}));
}

TEST(Grid, Validation) {
  Grid g;
  EXPECT_THROW(g.axis("x", {}), PreconditionError);
  g.axis("x", {1.0});
  EXPECT_THROW(g.axis("x", {2.0}), PreconditionError);  // duplicate name
  EXPECT_THROW(g.point(1), PreconditionError);
}

TEST(Sweep, EvaluatesEveryPoint) {
  const Grid g = grid2x3();
  int calls = 0;
  const auto result = run_sweep(g, {"product", "sum"},
                                [&](const std::vector<double>& p) {
                                  ++calls;
                                  return std::vector<double>{p[0] * p[1],
                                                             p[0] + p[1]};
                                });
  EXPECT_EQ(calls, 6);
  ASSERT_EQ(result.rows().size(), 6u);
  EXPECT_EQ(result.param_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(result.rows()[5].metrics[0], 60.0);
  EXPECT_DOUBLE_EQ(result.rows()[5].metrics[1], 32.0);
}

TEST(Sweep, BestFindsMaximum) {
  const auto result =
      run_sweep(grid2x3(), {"product"}, [](const std::vector<double>& p) {
        return std::vector<double>{p[0] * p[1]};
      });
  EXPECT_EQ(result.best("product"), 5u);  // 2 * 30
}

TEST(Sweep, MetricIndexValidates) {
  const auto result =
      run_sweep(grid2x3(), {"m"}, [](const std::vector<double>&) {
        return std::vector<double>{0.0};
      });
  EXPECT_EQ(result.metric_index("m"), 0u);
  EXPECT_THROW(result.metric_index("nope"), PreconditionError);
}

TEST(Sweep, WrongMetricCountRejected) {
  EXPECT_THROW(
      run_sweep(grid2x3(), {"one", "two"},
                [](const std::vector<double>&) {
                  return std::vector<double>{0.0};  // only one value
                }),
      PreconditionError);
}

TEST(Sweep, ParetoFrontMaximizesBenefitPerCost) {
  // cost = a, benefit = a*b: at each cost level the best b wins; front must
  // be strictly improving in benefit as cost rises.
  const auto result = run_sweep(
      grid2x3(), {"benefit", "cost"}, [](const std::vector<double>& p) {
        return std::vector<double>{p[0] * p[1], p[0]};
      });
  const auto front = result.pareto_front("benefit", "cost");
  ASSERT_EQ(front.size(), 2u);
  EXPECT_DOUBLE_EQ(result.rows()[front[0]].metrics[0], 30.0);  // cost 1
  EXPECT_DOUBLE_EQ(result.rows()[front[1]].metrics[0], 60.0);  // cost 2
}

TEST(Sweep, ParetoDropsDominatedPoints) {
  Grid g;
  g.axis("x", {1.0, 2.0, 3.0});
  // Benefit DECREASES with cost: only the cheapest point survives.
  const auto result =
      run_sweep(g, {"benefit", "cost"}, [](const std::vector<double>& p) {
        return std::vector<double>{10.0 - p[0], p[0]};
      });
  EXPECT_EQ(result.pareto_front("benefit", "cost").size(), 1u);
}

TEST(Sweep, TableHasParamsThenMetrics) {
  const auto result =
      run_sweep(grid2x3(), {"m"}, [](const std::vector<double>& p) {
        return std::vector<double>{p[0]};
      });
  const Table t = result.to_table();
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| m"), std::string::npos);
  EXPECT_EQ(t.row_count(), 6u);
}

TEST(Sweep, EmptyGridYieldsEmptyResultWithMetricNames) {
  // Regression: an empty grid must not abort the caller — it returns an
  // empty SweepResult whose metric names survive for downstream code.
  const Grid empty;
  int calls = 0;
  const auto result = run_sweep(empty, {"edp", "speedup"},
                                [&](const std::vector<double>&) {
                                  ++calls;
                                  return std::vector<double>{0.0, 0.0};
                                });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(result.rows().empty());
  EXPECT_EQ(result.metric_names(),
            (std::vector<std::string>{"edp", "speedup"}));
  EXPECT_TRUE(result.param_names().empty());
  EXPECT_EQ(result.metric_index("speedup"), 1u);
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_TRUE(result.pareto_front("edp", "speedup").empty());
  EXPECT_TRUE(result.failure_summary().empty());
  EXPECT_EQ(result.to_table().row_count(), 0u);
  EXPECT_THROW(result.best("edp"), PreconditionError);
}

TEST(Sweep, EmptyMetricsRejected) {
  EXPECT_THROW(run_sweep(grid2x3(), {},
                         [](const std::vector<double>&) {
                           return std::vector<double>{};
                         }),
               PreconditionError);
}

}  // namespace
}  // namespace uld3d::dse

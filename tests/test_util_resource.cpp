#include "uld3d/util/resource.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/telemetry.hpp"

namespace uld3d {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Burn thread CPU time (not just wall time) until the thread clock moves.
void burn_cpu() {
  volatile double acc = 0.0;
  for (int i = 0; i < 2'000'000; ++i) acc = acc + static_cast<double>(i) * 1e-9;
}

TEST(ResourceTest, ThreadCpuTimeAdvancesUnderWork) {
  const double before = thread_cpu_time_us();
  EXPECT_GE(before, 0.0);
  burn_cpu();
  EXPECT_GT(thread_cpu_time_us(), before);
}

TEST(ResourceTest, AllocCountingFollowsTheGate) {
  set_alloc_stats_enabled(true);
  const std::uint64_t before = thread_alloc_bytes();
  {
    std::vector<char> block(1 << 21);  // 2 MiB
    block[0] = 1;
  }
  const std::uint64_t counted = thread_alloc_bytes() - before;
  // Frees are deliberately not subtracted: this is an allocation-pressure
  // meter, so the vector's 2 MiB stays counted after its destructor runs.
  EXPECT_GE(counted, std::uint64_t{1} << 21);

  set_alloc_stats_enabled(false);
  const std::uint64_t frozen = thread_alloc_bytes();
  {
    std::vector<char> block(1 << 21);
    block[0] = 1;
  }
  EXPECT_EQ(thread_alloc_bytes(), frozen);
  set_alloc_stats_enabled(true);
}

TEST(ResourceTest, SampleCarriesAllThreeAxes) {
  const ResourceSample s = sample_thread_resources();
  EXPECT_GE(s.cpu_us, 0.0);
  // A running gtest process has touched well over a page of memory.
  EXPECT_GT(s.rss_hwm_kb, 0);
}

TEST(ResourceTest, StageEventsCarryResourceAttribution) {
  EventSink::instance().close();
  RunContext ctx;
  ctx.run_id = "resource-test";
  set_current_run_context(ctx);
  const std::string path = temp_path("resource_stage.ndjson");
  std::remove(path.c_str());
  ASSERT_TRUE(EventSink::instance().open(path));
  set_alloc_stats_enabled(true);
  {
    StageTimer stage("test.resource.stage");
    burn_cpu();
    std::vector<char> block(1 << 21);
    block[0] = 1;
  }
  EventSink::instance().close();

  bool saw_stage = false;
  for (const std::string& line : read_lines(path)) {
    const JsonValue event = json_parse(line);
    if (event.string_or("ev", "") != "stage") continue;
    if (event.string_or("name", "") != "test.resource.stage") continue;
    saw_stage = true;
    EXPECT_GT(event.number_or("dur_us", -1.0), 0.0);
    EXPECT_GT(event.number_or("cpu_us", -1.0), 0.0);
    EXPECT_GE(event.number_or("alloc_bytes", -1.0),
              static_cast<double>(std::uint64_t{1} << 21));
    EXPECT_GT(event.number_or("rss_kb", -1.0), 0.0);
  }
  EXPECT_TRUE(saw_stage);
  std::remove(path.c_str());
}

TEST(ResourceTest, StageMetricsAggregateWallCpuAlloc) {
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::instance().reset_values();
  set_alloc_stats_enabled(true);
  {
    StageTimer stage("test.resource.metrics");
    burn_cpu();
    std::vector<char> block(1 << 21);
    block[0] = 1;
  }
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("stage.test.resource.metrics.calls").value(), 1u);
  EXPECT_GT(reg.counter("stage.test.resource.metrics.wall_us").value(), 0u);
  EXPECT_GT(reg.counter("stage.test.resource.metrics.cpu_us").value(), 0u);
  EXPECT_GE(reg.counter("stage.test.resource.metrics.alloc_bytes").value(),
            std::uint64_t{1} << 21);
  MetricsRegistry::instance().reset_values();
  MetricsRegistry::set_enabled(false);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/phys/netlist.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

tech::StdCellLibrary lib() { return tech::StdCellLibrary::make_si_cmos_130nm(); }

Netlist tiny() {
  Netlist n;
  const auto a = n.add_cell("u0", "NAND2_X1");
  const auto b = n.add_cell("u1", "FA_X1");
  const auto c = n.add_cell("u2", "DFF_X1");
  n.add_net("n0", {a, b});
  n.add_net("n1", {a, b, c});
  return n;
}

TEST(Netlist, CountsAndHistogram) {
  const Netlist n = tiny();
  EXPECT_EQ(n.cell_count(), 3u);
  EXPECT_EQ(n.net_count(), 2u);
  const auto hist = n.type_histogram();
  EXPECT_EQ(hist.at("NAND2_X1"), 1);
  EXPECT_EQ(hist.at("FA_X1"), 1);
  EXPECT_EQ(hist.at("DFF_X1"), 1);
}

TEST(Netlist, AreaLeakageAndGeRollUps) {
  const Netlist n = tiny();
  const auto l = lib();
  EXPECT_DOUBLE_EQ(n.area_um2(l), l.cell("NAND2_X1").area_um2 +
                                      l.cell("FA_X1").area_um2 +
                                      l.cell("DFF_X1").area_um2);
  EXPECT_GT(n.leakage_nw(l), 0.0);
  EXPECT_EQ(n.gate_equivalents(l), 1 + 6 + 6);
}

TEST(Netlist, UnknownTypeThrowsOnRollup) {
  Netlist n;
  n.add_cell("u0", "NOT_A_CELL");
  EXPECT_THROW(n.area_um2(lib()), PreconditionError);
}

TEST(Netlist, NetValidation) {
  Netlist n;
  const auto a = n.add_cell("u0", "INV_X1");
  EXPECT_THROW(n.add_net("bad", {a}), PreconditionError);        // 1 pin
  EXPECT_THROW(n.add_net("bad", {a, 99}), PreconditionError);    // unknown
  EXPECT_THROW(n.add_cell("u1", ""), PreconditionError);         // no type
}

TEST(Netlist, HpwlMatchesHandComputation) {
  const Netlist n = tiny();
  const std::vector<Point> pos = {{0.0, 0.0}, {10.0, 0.0}, {10.0, 5.0}};
  // n0: bbox 10x0 -> 10; n1: bbox 10x5 -> 15.
  EXPECT_DOUBLE_EQ(n.hpwl_um(pos), 25.0);
}

TEST(Netlist, HpwlRequiresAllPositions) {
  const Netlist n = tiny();
  EXPECT_THROW(n.hpwl_um({{0.0, 0.0}}), PreconditionError);
}

TEST(Netlist, RowMajorPlacementStaysInRegion) {
  Netlist n;
  for (int i = 0; i < 100; ++i) {
    n.add_cell("u" + std::to_string(i), "NAND2_X1");
  }
  const Rect region = Rect::at(100.0, 200.0, 120.0, 120.0);
  const auto pos = place_row_major(n, region, lib());
  ASSERT_EQ(pos.size(), 100u);
  for (const auto& p : pos) {
    EXPECT_GE(p.x, region.x0);
    EXPECT_GE(p.y, region.y0);
    EXPECT_LE(p.x, region.x1 + 1.0);
  }
  // Adjacent indices sit one pitch apart (same row).
  EXPECT_NEAR(pos[1].x - pos[0].x, pos[2].x - pos[1].x, 1e-9);
}

}  // namespace
}  // namespace uld3d::phys

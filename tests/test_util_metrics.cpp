#include "uld3d/util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "uld3d/util/check.hpp"

namespace uld3d {
namespace {

// The registry is process-global; tests isolate themselves by zeroing all
// values and restoring the disabled default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::set_enabled(true);
    MetricsRegistry::instance().reset_values();
  }
  void TearDown() override {
    MetricsRegistry::instance().reset_values();
    MetricsRegistry::set_enabled(false);
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, LookupReturnsTheSameSeries) {
  Counter& a = MetricsRegistry::instance().counter("test.metrics.same");
  Counter& b = MetricsRegistry::instance().counter("test.metrics.same");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, KindCollisionThrows) {
  MetricsRegistry::instance().counter("test.metrics.kind_clash");
  EXPECT_THROW(MetricsRegistry::instance().gauge("test.metrics.kind_clash"),
               PreconditionError);
  EXPECT_THROW(
      MetricsRegistry::instance().histogram("test.metrics.kind_clash"),
      PreconditionError);
}

TEST_F(MetricsTest, DisabledUpdatesRecordNothing) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.disabled_c");
  Gauge& g = MetricsRegistry::instance().gauge("test.metrics.disabled_g");
  Histogram& h =
      MetricsRegistry::instance().histogram("test.metrics.disabled_h");
  MetricsRegistry::set_enabled(false);
  c.add(7);
  g.set(3.5);
  h.observe(12.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = MetricsRegistry::instance().gauge("test.metrics.gauge");
  g.set(1.25);
  g.set(-7.5);
  EXPECT_EQ(g.value(), -7.5);
}

TEST_F(MetricsTest, HistogramBucketsByUpperBound) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_bounds", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(1000.0);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBuckets) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_quantile", {10.0, 20.0, 30.0});
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);    // <= 10
  for (const double v : {11.0, 12.0, 13.0, 14.0}) h.observe(v);  // <= 20
  for (const double v : {21.0, 22.0}) h.observe(v);              // <= 30
  // rank = q*n walks the cumulative counts, then interpolates linearly
  // inside the covering bucket: p50 lands 1/4 into (10, 20].
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 12.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 27.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  // An overflow observation clamps high quantiles to the last finite bound
  // (the Prometheus histogram_quantile convention).
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  EXPECT_THROW((void)h.quantile(1.5), PreconditionError);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_quantile_empty", {10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST_F(MetricsTest, SnapshotAndExportsCarryQuantiles) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_quantile_export", {10.0, 20.0});
  h.observe(5.0);
  h.observe(15.0);
  bool found = false;
  for (const MetricSample& s : MetricsRegistry::instance().snapshot()) {
    if (s.name != "test.metrics.hist_quantile_export") continue;
    found = true;
    EXPECT_DOUBLE_EQ(s.p50, h.quantile(0.50));
    EXPECT_DOUBLE_EQ(s.p95, h.quantile(0.95));
    EXPECT_DOUBLE_EQ(s.p99, h.quantile(0.99));
  }
  EXPECT_TRUE(found);
  const std::string json = MetricsRegistry::instance().to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(MetricsRegistry::instance().to_csv().rfind(
                "name,kind,value,count,sum,p50,p95,p99", 0),
            0u);
}

TEST_F(MetricsTest, HistogramBoundsMustBeSortedAndDistinct) {
  EXPECT_THROW(MetricsRegistry::instance().histogram(
                   "test.metrics.hist_unsorted", {10.0, 1.0}),
               PreconditionError);
  EXPECT_THROW(MetricsRegistry::instance().histogram(
                   "test.metrics.hist_dup", {1.0, 1.0}),
               PreconditionError);
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrationAndBounds) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.reset_c");
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.reset_h", {2.0, 4.0});
  c.add(5);
  h.observe(3.0);
  MetricsRegistry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{2.0, 4.0}));
  // Same handle still registered under the same name.
  EXPECT_EQ(&MetricsRegistry::instance().counter("test.metrics.reset_c"), &c);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.threads_c");
  Histogram& h =
      MetricsRegistry::instance().histogram("test.metrics.threads_h", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry::instance().counter("test.metrics.snap_b").add(2);
  MetricsRegistry::instance().gauge("test.metrics.snap_a").set(1.5);
  const auto samples = MetricsRegistry::instance().snapshot();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                             [](const MetricSample& x, const MetricSample& y) {
                               return x.name < y.name;
                             }));
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const auto& s : samples) {
    if (s.name == "test.metrics.snap_b") {
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_EQ(s.value, 2.0);
      saw_counter = true;
    }
    if (s.name == "test.metrics.snap_a") {
      EXPECT_EQ(s.kind, MetricKind::kGauge);
      EXPECT_EQ(s.value, 1.5);
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST_F(MetricsTest, JsonExportContainsSeriesAndBuckets) {
  MetricsRegistry::instance().counter("test.metrics.json_c").add(3);
  MetricsRegistry::instance()
      .histogram("test.metrics.json_h", {1.0})
      .observe(0.5);
  const std::string json = MetricsRegistry::instance().to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_c\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  // Balanced braces/brackets — the cheap structural sanity check; the CLI
  // smoke test runs a real JSON parser over the exported file.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(MetricsTest, CsvExportHasHeaderAndRows) {
  MetricsRegistry::instance().counter("test.metrics.csv_c").add(1);
  const std::string csv = MetricsRegistry::instance().to_csv();
  EXPECT_EQ(csv.rfind("name,kind,value,count,sum", 0), 0u);
  EXPECT_NE(csv.find("test.metrics.csv_c,counter,1"), std::string::npos);
}

TEST_F(MetricsTest, ScopedTimerFeedsHistogram) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.timer", {1.0e9});
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);

  MetricsRegistry::set_enabled(false);
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);  // disabled timer records nothing
}

}  // namespace
}  // namespace uld3d

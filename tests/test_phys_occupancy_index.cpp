// Differential and determinism suite for the placement fast paths.
//
// The occupancy index, run-skipping scans, and spatial buckets are pure
// accelerators: their contract is bit-identical behaviour to the naive
// byte-grid / linear-scan implementations.  These tests drive both sides
// with thousands of randomized operations and assert exact agreement, then
// pin the end-to-end contract by comparing a full run_comparison with the
// fast paths on vs. off, bit for bit.
#include "uld3d/phys/occupancy_index.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "uld3d/phys/floorplan.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/phys/placer.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/rng.hpp"
#include "uld3d/util/simd.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::phys {
namespace {

/// Restore the process-wide fast-path flag on scope exit, so a failing
/// assertion cannot leak a disabled index into later tests.
class IndexFlagGuard {
 public:
  IndexFlagGuard() : saved_(placer_index_enabled()) {}
  ~IndexFlagGuard() { set_placer_index_enabled(saved_); }

 private:
  bool saved_;
};

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_rect(const Rect& a, const Rect& b) {
  return same_bits(a.x0, b.x0) && same_bits(a.y0, b.y0) &&
         same_bits(a.x1, b.x1) && same_bits(a.y1, b.y1);
}

TEST(OccupancyIndex, MatchesByteGridOnRandomMarkQuerySequences) {
  Rng rng(0xace);
  const std::int64_t nx = 57;  // deliberately non-square, non-power-of-two
  const std::int64_t ny = 43;
  std::vector<std::uint8_t> grid(static_cast<std::size_t>(nx * ny), 0);
  OccupancyIndex index;

  const auto naive_count = [&](std::int64_t bx0, std::int64_t by0,
                               std::int64_t bx1, std::int64_t by1) {
    std::int64_t n = 0;
    for (std::int64_t y = std::max<std::int64_t>(by0, 0);
         y < std::min(by1, ny); ++y) {
      for (std::int64_t x = std::max<std::int64_t>(bx0, 0);
           x < std::min(bx1, nx); ++x) {
        if (grid[static_cast<std::size_t>(y * nx + x)] != 0) ++n;
      }
    }
    return n;
  };
  const auto naive_rightmost = [&](std::int64_t bx0, std::int64_t by0,
                                   std::int64_t bx1, std::int64_t by1) {
    std::int64_t rightmost = -1;
    for (std::int64_t y = std::max<std::int64_t>(by0, 0);
         y < std::min(by1, ny); ++y) {
      for (std::int64_t x = std::max<std::int64_t>(bx0, 0);
           x < std::min(bx1, nx); ++x) {
        if (grid[static_cast<std::size_t>(y * nx + x)] != 0 && x > rightmost) {
          rightmost = x;
        }
      }
    }
    return rightmost;
  };
  // Windows hang off every edge now and then to exercise the clamping.
  const auto random_window = [&](std::int64_t& bx0, std::int64_t& by0,
                                 std::int64_t& bx1, std::int64_t& by1) {
    bx0 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(nx + 8))) - 4;
    by0 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(ny + 8))) - 4;
    bx1 = bx0 + static_cast<std::int64_t>(rng.below(20));
    by1 = by0 + static_cast<std::int64_t>(rng.below(20));
  };

  std::int64_t marks = 0;
  for (int op = 0; op < 4000; ++op) {
    std::int64_t bx0 = 0, by0 = 0, bx1 = 0, by1 = 0;
    random_window(bx0, by0, bx1, by1);
    if (rng.below(5) == 0) {  // ~20% marks, 80% queries (the hot side)
      for (std::int64_t y = std::max<std::int64_t>(by0, 0);
           y < std::min(by1, ny); ++y) {
        for (std::int64_t x = std::max<std::int64_t>(bx0, 0);
             x < std::min(bx1, nx); ++x) {
          grid[static_cast<std::size_t>(y * nx + x)] = 1;
        }
      }
      index.invalidate();
      ++marks;
      continue;
    }
    index.refresh(grid.data(), nx, ny);
    ASSERT_EQ(index.count(bx0, by0, bx1, by1), naive_count(bx0, by0, bx1, by1))
        << "op " << op;
    ASSERT_EQ(index.rect_clear(bx0, by0, bx1, by1),
              naive_count(bx0, by0, bx1, by1) == 0)
        << "op " << op;
    ASSERT_EQ(index.rightmost_occupied(bx0, by0, bx1, by1),
              naive_rightmost(bx0, by0, bx1, by1))
        << "op " << op;
    ASSERT_EQ(index.occupied_bins(), naive_count(0, 0, nx, ny)) << "op " << op;
  }
  EXPECT_GT(marks, 100);  // the sequence actually mutated the grid
}

TEST(OccupancyIndex, SatBuildIdenticalWithSimdKernelsForcedScalar) {
  // The SAT/prefix-max build runs on util/simd prefix kernels; forcing the
  // scalar kernels must reproduce every query answer exactly (integer ops,
  // so SIMD==scalar is bitwise, not approximate).
  Rng rng(0xbee);
  const std::int64_t nx = 61;
  const std::int64_t ny = 37;
  std::vector<std::uint8_t> grid(static_cast<std::size_t>(nx * ny), 0);
  for (auto& cell : grid) cell = rng.below(3) == 0 ? 1 : 0;

  OccupancyIndex simd_index;
  simd_index.refresh(grid.data(), nx, ny);

  simd::set_force_scalar(true);
  OccupancyIndex scalar_index;
  scalar_index.refresh(grid.data(), nx, ny);
  simd::set_force_scalar(false);

  EXPECT_EQ(simd_index.occupied_bins(), scalar_index.occupied_bins());
  for (int q = 0; q < 500; ++q) {
    const std::int64_t bx0 =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(nx + 8))) - 4;
    const std::int64_t by0 =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(ny + 8))) - 4;
    const std::int64_t bx1 = bx0 + static_cast<std::int64_t>(rng.below(24));
    const std::int64_t by1 = by0 + static_cast<std::int64_t>(rng.below(24));
    ASSERT_EQ(simd_index.count(bx0, by0, bx1, by1),
              scalar_index.count(bx0, by0, bx1, by1))
        << "q " << q;
    ASSERT_EQ(simd_index.rightmost_occupied(bx0, by0, bx1, by1),
              scalar_index.rightmost_occupied(bx0, by0, bx1, by1))
        << "q " << q;
  }
}

TEST(OccupancyIndex, StaleQueryIsAnInvariantViolation) {
  OccupancyIndex index;
  EXPECT_THROW(index.count(0, 0, 1, 1), InvariantError);
  const std::vector<std::uint8_t> grid(4, 0);
  index.refresh(grid.data(), 2, 2);
  EXPECT_EQ(index.count(0, 0, 2, 2), 0);
  index.invalidate();
  EXPECT_THROW(index.occupied_bins(), InvariantError);
}

TEST(OccupancyIndex, RefreshIsIdempotentWhenFresh) {
  std::vector<std::uint8_t> grid(9, 0);
  grid[4] = 1;
  OccupancyIndex index;
  index.refresh(grid.data(), 3, 3);
  EXPECT_EQ(index.occupied_bins(), 1);
  // A fresh index ignores grid edits until invalidated (rebuild-on-mark is
  // the caller's contract).
  grid[0] = 1;
  index.refresh(grid.data(), 3, 3);
  EXPECT_EQ(index.occupied_bins(), 1);
  index.invalidate();
  index.refresh(grid.data(), 3, 3);
  EXPECT_EQ(index.occupied_bins(), 2);
}

TEST(RectBuckets, MatchesLinearScanOnRandomInsertRemoveQuery) {
  Rng rng(0xbee);
  const double side = 5000.0;
  RectBuckets buckets(side, side, 32);
  std::vector<std::optional<Rect>> naive(64);

  const auto random_rect = [&] {
    const double x = rng.uniform() * side * 0.9;
    const double y = rng.uniform() * side * 0.9;
    const double w = 10.0 + rng.uniform() * side * 0.2;
    const double h = 10.0 + rng.uniform() * side * 0.2;
    return Rect::at(x, y, w, h);
  };

  for (int op = 0; op < 5000; ++op) {
    const std::size_t id = static_cast<std::size_t>(rng.below(naive.size()));
    switch (rng.below(4)) {
      case 0:  // insert (replacing any previous rect under this id)
        if (naive[id].has_value()) buckets.remove(id, *naive[id]);
        naive[id] = random_rect();
        buckets.insert(id, *naive[id]);
        break;
      case 1:  // remove
        if (naive[id].has_value()) {
          buckets.remove(id, *naive[id]);
          naive[id].reset();
        }
        break;
      default: {  // query, sometimes with self-exclusion
        const Rect q = random_rect();
        const std::size_t self =
            rng.below(2) == 0 ? static_cast<std::size_t>(rng.below(naive.size()))
                              : naive.size();
        bool expect_hit = false;
        for (std::size_t i = 0; i < naive.size(); ++i) {
          if (i != self && naive[i].has_value() && naive[i]->overlaps(q)) {
            expect_hit = true;
            break;
          }
        }
        const auto hit = buckets.overlaps_any(q, self);
        ASSERT_EQ(hit.has_value(), expect_hit) << "op " << op;
        if (hit.has_value()) {
          EXPECT_TRUE(hit->overlaps(q)) << "op " << op;
        }
        break;
      }
    }
  }
}

TEST(PlacerIndexFlag, RuntimeToggleRoundTrips) {
  const IndexFlagGuard guard;
  set_placer_index_enabled(false);
  EXPECT_FALSE(placer_index_enabled());
  set_placer_index_enabled(true);
  EXPECT_TRUE(placer_index_enabled());
}

TEST(FloorplanDifferential, QueriesAgreeWithIndexOnAndOff) {
  const IndexFlagGuard guard;
  Rng rng(0xf100);
  for (int trial = 0; trial < 8; ++trial) {
    Floorplan fp(4000.0, 3000.0, tech::TierStack::make_m3d_130nm(), 50.0);
    const auto random_rect = [&] {
      const double x = rng.uniform() * 3900.0;
      const double y = rng.uniform() * 2900.0;
      const double w = 20.0 + rng.uniform() * 800.0;
      const double h = 20.0 + rng.uniform() * 800.0;
      return Rect::at(x, y, w, h);
    };
    for (int op = 0; op < 300; ++op) {
      const Rect r = random_rect();
      const auto tier = tech::TierKind::kSiCmosFeol;
      switch (rng.below(4)) {
        case 0: {
          // Both implementations must agree BEFORE the mutation decides.
          set_placer_index_enabled(true);
          const bool fast_free = fp.region_free(tier, r);
          set_placer_index_enabled(false);
          const bool naive_free = fp.region_free(tier, r);
          ASSERT_EQ(fast_free, naive_free) << "trial " << trial << " op " << op;
          set_placer_index_enabled(true);
          fp.allocate_region(tier, r);
          break;
        }
        case 1: {
          const double w = 100.0 + rng.uniform() * 1000.0;
          const double h = 100.0 + rng.uniform() * 1000.0;
          set_placer_index_enabled(true);
          const auto fast_found = fp.find_free_region(tier, w, h);
          set_placer_index_enabled(false);
          const auto naive_found = fp.find_free_region(tier, w, h);
          ASSERT_EQ(fast_found.has_value(), naive_found.has_value())
              << "trial " << trial << " op " << op;
          if (fast_found.has_value()) {
            ASSERT_TRUE(same_rect(*fast_found, *naive_found))
                << "trial " << trial << " op " << op;
          }
          break;
        }
        case 2: {
          set_placer_index_enabled(true);
          const std::int64_t fast_col = fp.rightmost_occupied_col(tier, r);
          set_placer_index_enabled(false);
          const std::int64_t naive_col = fp.rightmost_occupied_col(tier, r);
          ASSERT_EQ(fast_col, naive_col) << "trial " << trial << " op " << op;
          break;
        }
        default: {
          set_placer_index_enabled(true);
          const double fast_free = fp.free_area_um2(tier);
          const double fast_util = fp.utilization(tier);
          set_placer_index_enabled(false);
          ASSERT_TRUE(same_bits(fast_free, fp.free_area_um2(tier)))
              << "trial " << trial << " op " << op;
          ASSERT_TRUE(same_bits(fast_util, fp.utilization(tier)))
              << "trial " << trial << " op " << op;
          break;
        }
      }
      set_placer_index_enabled(true);
    }
  }
}

TEST(FloorplanDifferential, PlaceMacroAnywhereAgreesWithNaiveScan) {
  const IndexFlagGuard guard;
  Rng seq(0x9a);
  for (int trial = 0; trial < 6; ++trial) {
    Floorplan fast_fp(3000.0, 3000.0, tech::TierStack::make_m3d_130nm(), 50.0);
    Floorplan naive_fp(3000.0, 3000.0, tech::TierStack::make_m3d_130nm(), 50.0);
    for (int op = 0; op < 25; ++op) {
      const double area = 1.0e4 + seq.uniform() * 8.0e5;
      const bool m3d = seq.below(2) == 0;
      const std::string name = "m" + std::to_string(op);
      const Macro macro = m3d ? Macro::rram_array_m3d(name, area)
                              : Macro::rram_array_2d(name, area);
      set_placer_index_enabled(true);
      const auto fast_placed = fast_fp.place_macro_anywhere(macro);
      set_placer_index_enabled(false);
      const auto naive_placed = naive_fp.place_macro_anywhere(macro);
      ASSERT_EQ(fast_placed.has_value(), naive_placed.has_value())
          << "trial " << trial << " op " << op;
      if (fast_placed.has_value()) {
        ASSERT_TRUE(same_rect(*fast_placed, *naive_placed))
            << "trial " << trial << " op " << op;
      }
    }
    set_placer_index_enabled(true);
  }
}

FlowInput case_study_input() {
  FlowInput input;
  input.rram_capacity_bits = units::mb_to_bits(64.0);
  input.cs_sram_area_um2 = 1.97e6;
  input.cs_logic_area_um2 = 4.6e6;
  input.cs_logic_gates = 295600;
  return input;
}

void expect_reports_identical(const DesignReport& a, const DesignReport& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.unplaced, b.unplaced);
  EXPECT_TRUE(same_bits(a.die_width_um, b.die_width_um));
  EXPECT_TRUE(same_bits(a.footprint_mm2, b.footprint_mm2));
  EXPECT_TRUE(same_bits(a.si_utilization, b.si_utilization));
  EXPECT_EQ(a.cs_placed, b.cs_placed);
  EXPECT_TRUE(same_bits(a.placement_hpwl_um, b.placement_hpwl_um));
  EXPECT_TRUE(same_bits(a.total_wirelength_um, b.total_wirelength_um));
  EXPECT_EQ(a.buffers, b.buffers);
  EXPECT_TRUE(same_bits(a.congestion_peak, b.congestion_peak));
  EXPECT_TRUE(same_bits(a.congestion_overflow, b.congestion_overflow));
  EXPECT_TRUE(same_bits(a.total_power_mw, b.total_power_mw));
  EXPECT_TRUE(same_bits(a.peak_density_mw_per_mm2, b.peak_density_mw_per_mm2));
  EXPECT_TRUE(
      same_bits(a.upper_tier_power_fraction, b.upper_tier_power_fraction));
  ASSERT_EQ(a.placed_macros.size(), b.placed_macros.size());
  for (std::size_t i = 0; i < a.placed_macros.size(); ++i) {
    EXPECT_TRUE(same_rect(a.placed_macros[i].rect, b.placed_macros[i].rect))
        << "macro " << i;
  }
  ASSERT_EQ(a.placed_blocks.size(), b.placed_blocks.size());
  for (std::size_t i = 0; i < a.placed_blocks.size(); ++i) {
    EXPECT_EQ(a.placed_blocks[i].macro.name, b.placed_blocks[i].macro.name);
    EXPECT_TRUE(same_rect(a.placed_blocks[i].rect, b.placed_blocks[i].rect))
        << "block " << i;
  }
  ASSERT_EQ(a.bus_routes.size(), b.bus_routes.size());
  for (std::size_t i = 0; i < a.bus_routes.size(); ++i) {
    EXPECT_TRUE(same_bits(a.bus_routes[i].from.x, b.bus_routes[i].from.x));
    EXPECT_TRUE(same_bits(a.bus_routes[i].from.y, b.bus_routes[i].from.y));
    EXPECT_TRUE(same_bits(a.bus_routes[i].to.x, b.bus_routes[i].to.x));
    EXPECT_TRUE(same_bits(a.bus_routes[i].to.y, b.bus_routes[i].to.y));
    EXPECT_TRUE(same_bits(a.bus_routes[i].tracks, b.bus_routes[i].tracks));
  }
}

TEST(PlacementDeterminism, RunComparisonBitIdenticalWithIndexOff) {
  const IndexFlagGuard guard;
  const M3dFlow flow;
  set_placer_index_enabled(true);
  const FlowComparison fast = flow.run_comparison(case_study_input(), 8);
  set_placer_index_enabled(false);
  const FlowComparison naive = flow.run_comparison(case_study_input(), 8);
  set_placer_index_enabled(true);
  expect_reports_identical(fast.design_2d, naive.design_2d);
  expect_reports_identical(fast.design_3d, naive.design_3d);
  EXPECT_EQ(fast.iso_footprint, naive.iso_footprint);
  EXPECT_TRUE(
      same_bits(fast.wirelength_per_cs_ratio, naive.wirelength_per_cs_ratio));
  EXPECT_TRUE(same_bits(fast.peak_density_ratio, naive.peak_density_ratio));
}

TEST(PlacerMetrics, CountersTrackScanAndSkipActivity) {
  const IndexFlagGuard guard;
  set_placer_index_enabled(true);
  MetricsRegistry::set_enabled(true);
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("phys.placer.candidates_scanned").reset();
  registry.counter("phys.placer.candidates_skipped").reset();
  registry.counter("phys.placer.legal_checks").reset();

  Floorplan fp(6000.0, 6000.0, tech::TierStack::make_m3d_130nm(), 100.0);
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_2d("m", 16.0e6), 0.0, 0.0));
  SoftBlock block;
  block.name = "a";
  block.area_um2 = 9.0e6;
  block.tier = tech::TierKind::kSiCmosFeol;
  Rng rng(1);
  const Placer placer;
  const auto result = placer.place(fp, {block}, rng);
  MetricsRegistry::set_enabled(false);
  ASSERT_TRUE(result.success);
  EXPECT_GT(registry.counter("phys.placer.candidates_scanned").value(), 0u);
  EXPECT_GT(registry.counter("phys.placer.candidates_skipped").value(), 0u);
  EXPECT_GT(registry.counter("phys.placer.legal_checks").value(), 0u);
  // Legality is only ever checked on candidates that were not skipped.
  EXPECT_LE(registry.counter("phys.placer.legal_checks").value(),
            registry.counter("phys.placer.candidates_scanned").value());
}

}  // namespace
}  // namespace uld3d::phys

#include "uld3d/phys/congestion.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

TEST(Congestion, NoRoutesNoDemand) {
  const CongestionMap map(4000.0, 4000.0, {});
  EXPECT_DOUBLE_EQ(map.peak_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(map.mean_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(map.overflow_fraction(), 0.0);
}

TEST(Congestion, SingleRouteDemandsAlongLShape) {
  // Horizontal leg at y=125 then vertical at x=3875 (bins of 250 um).
  const CongestionMap map(4000.0, 4000.0,
                          {{{125.0, 125.0}, {3875.0, 3875.0}, 64.0}});
  EXPECT_GT(map.peak_utilization(), 0.0);
  // The corner bin carries both legs of the L (horizontal + vertical):
  // 2 * 64 tracks vs (250/0.46)*4 ~ 2174 supply.
  EXPECT_NEAR(map.peak_utilization(), 2.0 * 64.0 / (250.0 / 0.46 * 4.0),
              1e-9);
  EXPECT_DOUBLE_EQ(map.overflow_fraction(), 0.0);
}

TEST(Congestion, ParallelRoutesStackDemand) {
  std::vector<Route> one = {{{125.0, 125.0}, {3875.0, 125.0}, 100.0}};
  std::vector<Route> ten(10, one[0]);
  const CongestionMap a(4000.0, 4000.0, one);
  const CongestionMap b(4000.0, 4000.0, ten);
  EXPECT_NEAR(b.peak_utilization() / a.peak_utilization(), 10.0, 1e-9);
}

TEST(Congestion, OverflowDetected) {
  CongestionParams tight;
  tight.routing_layers = 1;
  tight.wire_pitch_um = 10.0;  // only 25 tracks per bin
  const CongestionMap map(1000.0, 1000.0,
                          {{{10.0, 10.0}, {990.0, 10.0}, 100.0}}, tight);
  EXPECT_GT(map.peak_utilization(), 1.0);
  EXPECT_GT(map.overflow_fraction(), 0.0);
}

TEST(Congestion, MoreLayersMoreSupply) {
  const std::vector<Route> routes = {{{10.0, 10.0}, {990.0, 990.0}, 64.0}};
  CongestionParams two;
  two.routing_layers = 2;
  CongestionParams eight;
  eight.routing_layers = 8;
  EXPECT_NEAR(CongestionMap(1000.0, 1000.0, routes, two).peak_utilization() /
                  CongestionMap(1000.0, 1000.0, routes, eight).peak_utilization(),
              4.0, 1e-9);
}

TEST(Congestion, AsciiReportsStats) {
  const CongestionMap map(2000.0, 2000.0,
                          {{{100.0, 100.0}, {1900.0, 1900.0}, 64.0}});
  const std::string s = map.to_ascii();
  EXPECT_NE(s.find("peak"), std::string::npos);
  EXPECT_NE(s.find("overflow"), std::string::npos);
}

TEST(Congestion, Validation) {
  EXPECT_THROW(CongestionMap(0.0, 1.0, {}), PreconditionError);
  EXPECT_THROW(CongestionMap(1.0, 1.0, {{{0, 0}, {1, 1}, 0.0}}),
               PreconditionError);
  CongestionParams bad;
  bad.routing_layers = 0;
  EXPECT_THROW(CongestionMap(1.0, 1.0, {}, bad), PreconditionError);
}

TEST(CongestionFlowIntegration, BothDesignsRouteWithinCapacity) {
  // The Sec.-II buses must not overflow the 130 nm metal stack in either
  // design — M3D's extra CS-to-bank buses ride over the freed arrays.
  // (Exercised through the flow's report fields.)
  SUCCEED();  // covered by test_phys_flow's report checks below
}

}  // namespace
}  // namespace uld3d::phys

#include "uld3d/accel/cs_netlist.hpp"

#include <gtest/gtest.h>

namespace uld3d::accel {
namespace {

tech::StdCellLibrary lib() { return tech::StdCellLibrary::make_si_cmos_130nm(); }

TEST(CsNetlist, CellCountMatchesStructure) {
  const CsDesign cs;
  const PeStructure pe;
  const auto netlist = build_cs_array_netlist(cs, pe);
  EXPECT_EQ(netlist.cell_count(),
            static_cast<std::size_t>(cs.pe_rows * cs.pe_cols *
                                     pe.cells_per_pe()));
}

TEST(CsNetlist, HistogramMatchesPerPeComposition) {
  const CsDesign cs;
  const PeStructure pe;
  const auto hist = build_cs_array_netlist(cs, pe).type_histogram();
  const std::int64_t pes = cs.pe_rows * cs.pe_cols;
  EXPECT_EQ(hist.at("NAND2_X1"), pes * pe.multiplier_nand2);
  EXPECT_EQ(hist.at("FA_X1"), pes * (pe.multiplier_fa + pe.accumulator_fa));
  EXPECT_EQ(hist.at("DFF_X1"),
            pes * (pe.weight_reg_dff + pe.input_pipe_dff + pe.psum_pipe_dff));
}

TEST(CsNetlist, SystolicNetsPresent) {
  // 8-bit buses rightward on 16 rows x 15 hops, 24-bit buses downward on
  // 15 hops x 16 columns, plus the intra-PE wiring.
  const CsDesign cs;
  const auto netlist = build_cs_array_netlist(cs);
  const std::size_t inter_pe =
      static_cast<std::size_t>(16 * 15 * 8 + 15 * 16 * 24);
  EXPECT_GT(netlist.net_count(), inter_pe);
}

TEST(CsNetlist, StructuralAreaTracksGateBudget) {
  // The gates_per_pe budget in CsDesign must agree with the structural
  // netlist within a few percent — they are two views of the same design.
  const CsDesign cs;
  const auto report = validate_cs_netlist(cs, lib());
  EXPECT_NEAR(report.array_area_um2 / report.budget_area_um2, 1.0, 0.05);
}

TEST(CsNetlist, StructuralWirelengthNearDonathEstimate) {
  // The statistical model and the structural HPWL must agree within ~3x;
  // a systolic array is MORE local than Rent-random logic, so structural
  // should come in at or below the estimate.
  const CsDesign cs;
  const auto report = validate_cs_netlist(cs, lib());
  EXPECT_GT(report.structural_hpwl_um, report.donath_estimate_um / 3.0);
  EXPECT_LT(report.structural_hpwl_um, report.donath_estimate_um * 1.5);
}

TEST(CsNetlist, ScalesWithArrayDimensions) {
  CsDesign small;
  small.pe_rows = 4;
  small.pe_cols = 4;
  const auto netlist = build_cs_array_netlist(small);
  const PeStructure pe;
  EXPECT_EQ(netlist.cell_count(),
            static_cast<std::size_t>(16 * pe.cells_per_pe()));
  const auto report = validate_cs_netlist(small, lib());
  EXPECT_GT(report.structural_hpwl_um, 0.0);
}

TEST(CsNetlist, GateEquivalentsNearBudgetedCount) {
  const CsDesign cs;
  const auto report = validate_cs_netlist(cs, lib());
  const double budget_ge =
      static_cast<double>(cs.pe_rows * cs.pe_cols * cs.gates_per_pe);
  EXPECT_NEAR(static_cast<double>(report.gate_equivalents) / budget_ge, 1.0,
              0.35);
}

}  // namespace
}  // namespace uld3d::accel

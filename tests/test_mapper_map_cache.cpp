#include "uld3d/mapper/map_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/parallel.hpp"

namespace uld3d::mapper {
namespace {

/// Every test starts from an empty, enabled cache with zeroed counters and
/// leaves the global state (cache, jobs) as it found it.
class MapCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MapCache::instance().set_enabled(true);
    MapCache::instance().clear();
    MapCache::instance().reset_counters();
    parallel::set_jobs(0);
  }
  void TearDown() override {
    MapCache::instance().set_enabled(true);
    MapCache::instance().clear();
    MapCache::instance().reset_counters();
    parallel::set_jobs(0);
  }
};

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx, const std::string& name = "c") {
  nn::ConvSpec s;
  s.name = name;
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = 1;
  return s;
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_costs_identical(const LayerCost& a, const LayerCost& b) {
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.mapping_order, b.mapping_order);
  EXPECT_EQ(a.cs_used, b.cs_used);
  EXPECT_TRUE(bits_equal(a.utilization, b.utilization));
  EXPECT_TRUE(bits_equal(a.compute_cycles, b.compute_cycles));
  EXPECT_TRUE(bits_equal(a.rram_cycles, b.rram_cycles));
  EXPECT_TRUE(bits_equal(a.latency_cycles, b.latency_cycles));
  EXPECT_TRUE(bits_equal(a.mac_energy_pj, b.mac_energy_pj));
  EXPECT_TRUE(bits_equal(a.buffer_energy_pj, b.buffer_energy_pj));
  EXPECT_TRUE(bits_equal(a.rram_energy_pj, b.rram_energy_pj));
  EXPECT_TRUE(bits_equal(a.idle_energy_pj, b.idle_energy_pj));
  EXPECT_TRUE(bits_equal(a.energy_pj, b.energy_pj));
}

TEST_F(MapCacheTest, SecondEvaluationHitsAndMatchesBitwise) {
  const auto arch = make_table2_architecture(1);
  const nn::ConvSpec c = conv(256, 96, 27, 5);
  const LayerCost cold = evaluate_conv(c, arch, {}, 4);
  const std::uint64_t misses_after_cold = MapCache::instance().misses();
  EXPECT_GT(misses_after_cold, 0u);
  EXPECT_EQ(MapCache::instance().hits(), 0u);
  const LayerCost warm = evaluate_conv(c, arch, {}, 4);
  EXPECT_EQ(MapCache::instance().hits(), 1u);
  EXPECT_EQ(MapCache::instance().misses(), misses_after_cold);
  expect_costs_identical(cold, warm);
}

TEST_F(MapCacheTest, HitPatchesInTheCallersLayerName) {
  // Same shape under two names: one cached pricing, two correct labels.
  const auto arch = make_table2_architecture(1);
  const LayerCost first = evaluate_conv(conv(128, 64, 14, 3, "convA"),
                                        arch, {}, 2);
  const LayerCost second = evaluate_conv(conv(128, 64, 14, 3, "convB"),
                                         arch, {}, 2);
  EXPECT_EQ(first.layer, "convA");
  EXPECT_EQ(second.layer, "convB");
  EXPECT_EQ(MapCache::instance().hits(), 1u);
  EXPECT_TRUE(bits_equal(first.energy_pj, second.energy_pj));
  EXPECT_TRUE(bits_equal(first.latency_cycles, second.latency_cycles));
}

TEST_F(MapCacheTest, CacheOffMatchesCacheOnBitwise) {
  const auto arch = make_table2_architecture(2);
  const nn::ConvSpec c = conv(512, 256, 28, 3);
  const LayerCost on_cold = evaluate_conv(c, arch, {}, 8);
  const LayerCost on_warm = evaluate_conv(c, arch, {}, 8);
  MapCache::instance().set_enabled(false);
  const LayerCost off = evaluate_conv(c, arch, {}, 8);
  expect_costs_identical(on_cold, off);
  expect_costs_identical(on_warm, off);
}

TEST_F(MapCacheTest, KeyDiscriminatesEveryInput) {
  const auto arch = make_table2_architecture(1);
  const nn::ConvSpec c = conv(64, 32, 7, 3);
  const SystemCosts sys;
  const MapCache::Key base = MapCache::key(c, arch, sys, 4);

  EXPECT_EQ(MapCache::key(conv(64, 32, 7, 3, "other"), arch, sys, 4), base)
      << "names must not affect the key";
  EXPECT_NE(MapCache::key(conv(65, 32, 7, 3), arch, sys, 4), base);
  EXPECT_NE(MapCache::key(c, arch, sys, 8), base) << "n_cs is a key input";

  SystemCosts tweaked = sys;
  tweaked.m3d_access_energy_scale += 1e-12;
  EXPECT_NE(MapCache::key(c, arch, tweaked, 4), base)
      << "system costs are key inputs down to the last bit";

  Architecture wider = arch;
  wider.mac_energy_pj += 1e-12;
  EXPECT_NE(MapCache::key(c, wider, sys, 4), base);

  Architecture renamed = arch;
  renamed.name = "same numbers, new name";
  EXPECT_EQ(MapCache::key(c, renamed, sys, 4), base);
}

TEST_F(MapCacheTest, ClearDropsEntriesButKeepsCounters) {
  const auto arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 7, 3), arch, {}, 1);
  EXPECT_GT(MapCache::instance().size(), 0u);
  const std::uint64_t misses = MapCache::instance().misses();
  MapCache::instance().clear();
  EXPECT_EQ(MapCache::instance().size(), 0u);
  EXPECT_EQ(MapCache::instance().misses(), misses);
  MapCache::instance().reset_counters();
  EXPECT_EQ(MapCache::instance().misses(), 0u);
}

TEST_F(MapCacheTest, SearchedNetworkIdenticalAcrossJobsAndCacheModes) {
  // The full searched-network pipeline — per-layer fan-out, per-unrolling
  // fan-out, cost memoization — must be invisible in the numbers: any jobs
  // count, cache on or off, the totals and every per-layer cost match the
  // serial cache-off run bitwise.
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(1);

  MapCache::instance().set_enabled(false);
  parallel::set_jobs(1);
  const SearchedNetworkCost ref =
      evaluate_network_with_search(net, arch, {}, 4);

  struct Mode {
    bool cache;
    int jobs;
  };
  for (const Mode mode : {Mode{true, 1}, Mode{false, 8}, Mode{true, 8}}) {
    MapCache::instance().set_enabled(mode.cache);
    MapCache::instance().clear();
    parallel::set_jobs(mode.jobs);
    const SearchedNetworkCost got =
        evaluate_network_with_search(net, arch, {}, 4);
    EXPECT_TRUE(bits_equal(got.fixed.latency_cycles, ref.fixed.latency_cycles))
        << "cache=" << mode.cache << " jobs=" << mode.jobs;
    EXPECT_TRUE(bits_equal(got.fixed.energy_pj, ref.fixed.energy_pj));
    EXPECT_TRUE(
        bits_equal(got.searched.latency_cycles, ref.searched.latency_cycles))
        << "cache=" << mode.cache << " jobs=" << mode.jobs;
    EXPECT_TRUE(bits_equal(got.searched.energy_pj, ref.searched.energy_pj))
        << "cache=" << mode.cache << " jobs=" << mode.jobs;
    ASSERT_EQ(got.searched.layers.size(), ref.searched.layers.size());
    for (std::size_t i = 0; i < ref.searched.layers.size(); ++i) {
      expect_costs_identical(got.searched.layers[i], ref.searched.layers[i]);
    }
  }
}

TEST_F(MapCacheTest, SearchReusesPricingsAcrossRepeatedShapes) {
  // ResNet-style repetition: the second pass over the same network must be
  // answered almost entirely from the cache.
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(1);
  (void)evaluate_network_with_search(net, arch, {}, 4);
  const std::uint64_t cold_misses = MapCache::instance().misses();
  MapCache::instance().reset_counters();
  (void)evaluate_network_with_search(net, arch, {}, 4);
  EXPECT_EQ(MapCache::instance().misses(), 0u)
      << "second pass must be fully cached";
  EXPECT_GE(MapCache::instance().hits(), cold_misses);
}

}  // namespace
}  // namespace uld3d::mapper

#include "uld3d/phys/power.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

TEST(Power, TotalsSumComponents) {
  PowerModel m;
  m.add({"a", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 100, 100), 3.0});
  m.add({"b", tech::TierKind::kRram, Rect::at(0, 0, 100, 100), 1.5});
  EXPECT_DOUBLE_EQ(m.total_mw(), 4.5);
  EXPECT_DOUBLE_EQ(m.tier_mw(tech::TierKind::kSiCmosFeol), 3.0);
  EXPECT_DOUBLE_EQ(m.tier_mw(tech::TierKind::kRram), 1.5);
  EXPECT_DOUBLE_EQ(m.tier_mw(tech::TierKind::kCnfetFeol), 0.0);
}

TEST(Power, UpperTierFraction) {
  PowerModel m;
  m.add({"si", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 100, 100), 99.0});
  m.add({"rram", tech::TierKind::kRram, Rect::at(0, 0, 100, 100), 0.6});
  m.add({"cnfet", tech::TierKind::kCnfetFeol, Rect::at(0, 0, 100, 100), 0.4});
  EXPECT_NEAR(m.upper_tier_fraction(), 0.01, 1e-12);
}

TEST(Power, UpperTierFractionZeroWhenEmpty) {
  const PowerModel m;
  EXPECT_DOUBLE_EQ(m.upper_tier_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_mw(), 0.0);
}

TEST(Power, PerTierListsAllDeviceTiers) {
  PowerModel m;
  m.add({"a", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 10, 10), 1.0});
  const auto tiers = m.per_tier();
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers[0].tier, tech::TierKind::kSiCmosFeol);
  EXPECT_DOUBLE_EQ(tiers[0].power_mw, 1.0);
}

TEST(Power, PeakDensityUniformComponent) {
  PowerModel m;
  // 10 mW over 1 mm^2 -> 10 mW/mm^2 everywhere.
  m.add({"a", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 1000, 1000), 10.0});
  EXPECT_NEAR(m.peak_density_mw_per_mm2(1000.0, 1000.0, 250.0), 10.0, 1e-9);
}

TEST(Power, PeakDensityFindsHotSpot) {
  PowerModel m;
  m.add({"background", tech::TierKind::kSiCmosFeol,
         Rect::at(0, 0, 2000, 2000), 4.0});  // 1 mW/mm^2
  m.add({"hotspot", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 250, 250),
         5.0});  // +80 mW/mm^2 locally
  const double peak = m.peak_density_mw_per_mm2(2000.0, 2000.0, 250.0);
  EXPECT_NEAR(peak, 81.0, 1.0);
}

TEST(Power, StackedTiersAddIntoSameArealBin) {
  PowerModel m;
  m.add({"si", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 500, 500), 2.0});
  m.add({"rram", tech::TierKind::kRram, Rect::at(0, 0, 500, 500), 2.0});
  EXPECT_NEAR(m.peak_density_mw_per_mm2(500.0, 500.0, 250.0), 16.0, 1e-9);
}

TEST(Power, Validation) {
  PowerModel m;
  EXPECT_THROW(
      m.add({"bad", tech::TierKind::kSiCmosFeol, Rect{}, 1.0}),
      PreconditionError);
  EXPECT_THROW(m.add({"bad", tech::TierKind::kSiCmosFeol,
                      Rect::at(0, 0, 1, 1), -1.0}),
               PreconditionError);
  EXPECT_THROW(m.peak_density_mw_per_mm2(0.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

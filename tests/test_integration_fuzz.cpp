// Fuzz-style integration: randomly generated CNNs must satisfy the same
// cross-model invariants the zoo models do — for the simulator, the
// analytical framework, and their mutual agreement.
#include <gtest/gtest.h>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/generator.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d {
namespace {

class FuzzNetworks : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] nn::Network net() const {
    Rng rng(GetParam());
    return nn::random_network(rng);
  }
};

TEST_P(FuzzNetworks, SimulatorInvariantsHold) {
  const accel::CaseStudy study;
  const auto cmp = study.run(net());
  // Speedup within [1, N]; energy near unity; EDP consistent.
  EXPECT_GE(cmp.speedup, 1.0 - 1e-9);
  EXPECT_LE(cmp.speedup, 8.0 + 1e-9);
  EXPECT_GT(cmp.energy_ratio, 0.90);
  EXPECT_LT(cmp.energy_ratio, 1.10);
  EXPECT_NEAR(cmp.edp_benefit, cmp.speedup / cmp.energy_ratio,
              1e-6 * cmp.edp_benefit);
  for (const auto& row : cmp.layers) {
    EXPECT_GE(row.speedup, 1.0 - 1e-9) << row.name;
    EXPECT_GT(row.cycles_2d, 0) << row.name;
  }
}

TEST_P(FuzzNetworks, AnalyticalTracksSimulator) {
  const accel::CaseStudy study;
  const nn::Network network = net();
  const auto cmp = study.run(network);
  const core::Chip2d c2 = study.chip2d_params();
  const core::Chip3d c3 = study.chip3d_params();
  std::vector<core::EdpResult> rs;
  for (const auto& w : core::layer_workloads(network, {}, {})) {
    rs.push_back(core::evaluate_edp(w, c2, c3));
  }
  const auto model = core::combine_results(rs);
  // Random topologies stress corners the zoo misses; allow 20% here
  // (the zoo agreement test pins 10%).
  EXPECT_LE(relative_difference(model.edp_benefit, cmp.edp_benefit), 0.20)
      << network.name() << ": model " << model.edp_benefit << " vs sim "
      << cmp.edp_benefit;
}

TEST_P(FuzzNetworks, WorkloadDerivationConsistent) {
  const nn::Network network = net();
  const auto per_layer = core::layer_workloads(network, {}, {});
  const auto total = core::network_workload(network, {}, {});
  double f0 = 0.0;
  for (const auto& w : per_layer) {
    EXPECT_GT(w.f0_ops, 0.0);
    EXPECT_GT(w.d0_bits, 0.0);
    EXPECT_GE(w.max_partitions, 1);
    EXPECT_LE(w.shared_bits(), w.d0_bits + 1e-9);
    f0 += w.f0_ops;
  }
  EXPECT_NEAR(total.f0_ops, f0, 1e-6 * f0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNetworks,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110));

}  // namespace
}  // namespace uld3d

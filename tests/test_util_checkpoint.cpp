// util/checkpoint: atomic file writes + interrupt plumbing.
//
// The atomicity contract under test: whatever goes wrong between opening the
// temp file and the final rename — an unwritable directory, a short write, a
// crash injected at the "util.export.atomic_write" fault site — the
// DESTINATION path is never created (or, when overwriting, never torn), and
// no temp litter survives a failed attempt.
#include "uld3d/util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "uld3d/util/fault.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool exists(const std::string& path) { return std::ifstream(path).good(); }

TEST(AtomicWrite, WritesContentExactly) {
  const std::string path = temp_path("atomic_exact.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(write_file_atomic(path, "hello\nworld\n"));
  EXPECT_EQ(slurp(path), "hello\nworld\n");
  // No temp litter next to the destination.
  EXPECT_FALSE(exists(path + ".tmp." + std::to_string(getpid())));
}

TEST(AtomicWrite, OverwritesExistingFile) {
  const std::string path = temp_path("atomic_overwrite.txt");
  ASSERT_TRUE(write_file_atomic(path, "old"));
  ASSERT_TRUE(write_file_atomic(path, "new content"));
  EXPECT_EQ(slurp(path), "new content");
}

TEST(AtomicWrite, UnwritableDirectoryFailsWithoutCreatingAnything) {
  const std::string path = "/nonexistent-dir-zzz/file.txt";
  EXPECT_FALSE(write_file_atomic(path, "data"));
  EXPECT_FALSE(exists(path));
}

TEST(AtomicWrite, EmptyContentYieldsEmptyFile) {
  const std::string path = temp_path("atomic_empty.txt");
  ASSERT_TRUE(write_file_atomic(path, ""));
  EXPECT_TRUE(exists(path));
  EXPECT_EQ(slurp(path), "");
}

// The crash-consistency test: a fault injected between the temp write and
// the rename simulates a process dying mid-emission.  The destination must
// not appear and the temp file must be cleaned up on the unwind path.
TEST(AtomicWrite, InjectedCrashBeforeRenameLeavesNoDestination) {
  const std::string path = temp_path("atomic_crash.txt");
  std::remove(path.c_str());
  FaultInjector::instance().arm(
      "util.export.atomic_write",
      Failure(ErrorCode::kFaultInjected, "simulated crash before rename"));
  EXPECT_THROW(write_file_atomic(path, "must never land"), StatusError);
  FaultInjector::instance().reset();
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + ".tmp." + std::to_string(getpid())));
  // The writer recovers fully once the fault is gone.
  ASSERT_TRUE(write_file_atomic(path, "landed"));
  EXPECT_EQ(slurp(path), "landed");
}

TEST(AtomicWrite, InjectedCrashPreservesPreviousContent) {
  const std::string path = temp_path("atomic_crash_keep.txt");
  ASSERT_TRUE(write_file_atomic(path, "generation 1"));
  FaultInjector::instance().arm(
      "util.export.atomic_write",
      Failure(ErrorCode::kFaultInjected, "simulated crash before rename"));
  EXPECT_THROW(write_file_atomic(path, "generation 2"), StatusError);
  FaultInjector::instance().reset();
  // Old complete file, not a torn mixture.
  EXPECT_EQ(slurp(path), "generation 1");
}

TEST(Interrupt, FlagIsClearByDefaultAndProgrammable) {
  set_interrupt_requested(false);
  EXPECT_FALSE(interrupt_requested());
  set_interrupt_requested(true);
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), 0);  // programmatic set records no signal
  set_interrupt_requested(false);
  EXPECT_FALSE(interrupt_requested());
}

TEST(Interrupt, SigtermSetsFlagAndProcessSurvives) {
  set_interrupt_requested(false);
  install_interrupt_handlers();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  // The handler latched the flag instead of killing us.
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), SIGTERM);
  set_interrupt_requested(false);
}

TEST(Interrupt, InstallIsIdempotent) {
  install_interrupt_handlers();
  install_interrupt_handlers();
  set_interrupt_requested(false);
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(interrupt_requested());
  set_interrupt_requested(false);
}

}  // namespace
}  // namespace uld3d

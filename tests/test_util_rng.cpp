#include "uld3d/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace uld3d {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(9);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~static_cast<std::uint64_t>(0));
  Rng rng(5);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace uld3d

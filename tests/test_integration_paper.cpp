// Integration tests pinning the reproduction to the paper's headline
// results.  Tolerances are generous enough to survive re-calibration of
// technology constants but tight enough that a broken model fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/multi_tier.hpp"
#include "uld3d/core/relaxed_baseline.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d {
namespace {

// ---------------------------------------------------------------- Table I
TEST(PaperTableI, ResNet18TotalsNearPaper) {
  // Paper: 5.64x speedup, 0.99x energy, 5.66x EDP.
  const accel::CaseStudy study;
  const auto cmp = study.run(nn::make_resnet18());
  EXPECT_NEAR(cmp.speedup, 5.64, 0.60);
  EXPECT_NEAR(cmp.energy_ratio, 0.99, 0.02);
  EXPECT_NEAR(cmp.edp_benefit, 5.66, 0.65);
}

TEST(PaperTableI, LayerStructureMatches) {
  const accel::CaseStudy study;
  const auto cmp = study.run(nn::make_resnet18());
  const auto row = [&](const std::string& name) {
    const auto it =
        std::find_if(cmp.layers.begin(), cmp.layers.end(),
                     [&](const auto& r) { return r.name == name; });
    EXPECT_NE(it, cmp.layers.end()) << name;
    return *it;
  };
  // Early layers are capped by K-tiling at ~4x (paper: 3.7x).
  EXPECT_NEAR(row("L1.0 CONV1").speedup, 3.7, 0.6);
  // Downsample projections see the smallest benefits (paper: 2.5-3.5x).
  EXPECT_LT(row("L2.0 DS").speedup, 4.0);
  EXPECT_GT(row("L2.0 DS").speedup, 1.5);
  // Late convolutions approach the 8-CS bound (paper: 7.4-7.9x).
  EXPECT_GT(row("L4.1 CONV2").speedup, 7.0);
  EXPECT_LE(row("L4.1 CONV2").speedup, 8.2);
  // Per-layer energy stays within a few percent of 1x everywhere.
  for (const auto& r : cmp.layers) {
    EXPECT_GT(r.energy_ratio, 0.90) << r.name;
    EXPECT_LT(r.energy_ratio, 1.05) << r.name;
  }
}

// ----------------------------------------------------------------- Fig. 5
TEST(PaperFig5, AllModelsInPaperRange) {
  // Paper: 5.7x-7.5x speedup at ~0.99x energy across AlexNet/VGG/ResNet.
  const accel::CaseStudy study;
  for (const char* name : {"alexnet", "vgg16", "resnet18", "resnet152"}) {
    const auto cmp = study.run(nn::make_network(name));
    EXPECT_GT(cmp.edp_benefit, 5.0) << name;
    EXPECT_LT(cmp.edp_benefit, 8.2) << name;
    EXPECT_NEAR(cmp.energy_ratio, 0.99, 0.025) << name;
  }
}

// ----------------------------------------------------------------- Fig. 7
TEST(PaperFig7, MapperBenefitsInPaperRange) {
  // Paper: 5.3x-11.5x EDP benefits across the six Table-II architectures.
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const auto net = nn::make_alexnet();
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& arch : mapper::table2_architectures()) {
    const auto b = mapper::evaluate_benefit(net, arch, {}, pdk);
    lo = std::min(lo, b.edp_benefit);
    hi = std::max(hi, b.edp_benefit);
  }
  EXPECT_GT(lo, 4.5);
  EXPECT_LT(hi, 14.0);
  EXPECT_GT(hi / lo, 1.4);  // a real spread across architectures
}

TEST(PaperFig7, AnalyticalWithinTenPercentOfMapper) {
  // The paper's validation claim: the analytical framework is within 10% of
  // the architectural simulator for every design point.
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const auto net = nn::make_alexnet();
  for (const auto& arch : mapper::table2_architectures()) {
    const auto zz = mapper::evaluate_benefit(net, arch, {}, pdk);

    core::Chip2d c2;
    c2.bandwidth_bits_per_cycle = arch.rram_bandwidth_bits_per_cycle;
    c2.peak_ops_per_cycle = 2.0 * static_cast<double>(arch.spatial.total_pes());
    c2.alpha_pj_per_bit = arch.rram_read_pj_per_bit;
    c2.compute_pj_per_op = arch.mac_energy_pj / 2.0;
    c2.cs_idle_pj_per_cycle = 2.0;
    c2.mem_idle_pj_per_cycle = 10.0;
    core::Chip3d c3;
    c3.parallel_cs = zz.n_cs;
    c3.bandwidth_bits_per_cycle =
        c2.bandwidth_bits_per_cycle * static_cast<double>(zz.n_cs);
    c3.alpha_pj_per_bit = c2.alpha_pj_per_bit * 0.97;
    c3.mem_idle_pj_per_cycle =
        c2.mem_idle_pj_per_cycle * (1.0 + 0.3 * static_cast<double>(zz.n_cs - 1));

    core::TrafficOptions traffic;
    core::PartitionOptions part;
    part.array_cols = arch.spatial.k;
    part.array_rows = arch.spatial.c;
    part.spatial_ox = arch.spatial.ox;
    part.spatial_oy = arch.spatial.oy;
    part.channel_tap_packing = false;
    part.hybrid_pixel_partition = true;
    std::vector<core::EdpResult> per_layer;
    for (const auto& w : core::layer_workloads(net, traffic, part)) {
      per_layer.push_back(core::evaluate_edp(w, c2, c3));
    }
    const auto model = core::combine_results(per_layer);
    EXPECT_LE(relative_difference(model.edp_benefit, zz.edp_benefit), 0.13)
        << arch.name << ": model " << model.edp_benefit << " vs mapper "
        << zz.edp_benefit;
  }
}

// ---------------------------------------------- analytical vs simulator
TEST(PaperValidation, AnalyticalWithinTenPercentOfSimulator) {
  const accel::CaseStudy study;
  const core::Chip2d c2 = study.chip2d_params();
  const core::Chip3d c3 = study.chip3d_params();
  for (const char* name : {"alexnet", "vgg16", "resnet18", "resnet152"}) {
    const auto net = nn::make_network(name);
    const auto sim_cmp = study.run(net);
    std::vector<core::EdpResult> per_layer;
    for (const auto& w : core::layer_workloads(net, {}, {})) {
      per_layer.push_back(core::evaluate_edp(w, c2, c3));
    }
    const auto model = core::combine_results(per_layer);
    EXPECT_LE(relative_difference(model.edp_benefit, sim_cmp.edp_benefit), 0.10)
        << name;
  }
}

// ----------------------------------------------------------------- Fig. 9
TEST(PaperFig9, BenefitMonotoneAndSaturatingInCapacity) {
  const auto net = nn::make_resnet18();
  double previous = 0.0;
  std::vector<double> benefits;
  for (const double mb : {12.0, 32.0, 64.0, 128.0}) {
    accel::CaseStudy study;
    study.rram_capacity_mb = mb;
    const auto cmp = study.run(net);
    EXPECT_GE(cmp.edp_benefit, previous - 0.05) << mb;
    previous = cmp.edp_benefit;
    benefits.push_back(cmp.edp_benefit);
  }
  // Small capacities give small benefits; the case-study point is ~5.5x.
  EXPECT_LT(benefits.front(), 2.5);
  EXPECT_GT(benefits[2], 5.0);
  // Saturation: the 64->128 MB step gains far less than 32->64.
  EXPECT_LT(benefits[3] - benefits[2], benefits[2] - benefits[1]);
}

// ------------------------------------------------------------- Case 1 / 2
TEST(PaperObs7, NoLossUpToSixteenXFetWidth) {
  const accel::CaseStudy study;
  const auto area = study.area_model();
  const core::Chip2d c2 = study.chip2d_params();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const auto workloads = core::layer_workloads(nn::make_resnet18(), {}, {});

  const auto benefit_at = [&](double delta) {
    const double scale = study.pdk.with_fet_width_relaxation(delta)
                             .rram_bit_area_m3d_um2() /
                         study.pdk.rram_bit_area_um2();
    const auto point = core::relaxed_design_point(area, scale);
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) {
      rs.push_back(core::evaluate_relaxed_edp(w, c2, point, bw));
    }
    return core::combine_results(rs).edp_benefit;
  };

  const double base = benefit_at(1.0);
  EXPECT_GE(benefit_at(1.6), base - 0.05);  // paper: no loss up to 1.6x
  EXPECT_LT(benefit_at(2.0), base);          // degradation beyond
  const double extreme = benefit_at(2.5);
  EXPECT_GT(extreme, 1.0);                   // small benefits retained
  EXPECT_LT(extreme, 0.5 * base);
}

TEST(PaperObs8, ViaPitchCrossoverBetween13And16) {
  const accel::CaseStudy study;
  const auto area = study.area_model();
  const core::Chip2d c2 = study.chip2d_params();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const auto workloads = core::layer_workloads(nn::make_resnet18(), {}, {});

  const auto benefit_at = [&](double beta) {
    const double scale =
        study.pdk.with_ilv_pitch_scale(beta).rram_bit_area_m3d_um2() /
        study.pdk.rram_bit_area_um2();
    const auto point = core::relaxed_design_point(area, scale);
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) {
      rs.push_back(core::evaluate_relaxed_edp(w, c2, point, bw));
    }
    return core::combine_results(rs).edp_benefit;
  };

  const double base = benefit_at(1.0);
  EXPECT_GE(benefit_at(1.3), base - 0.05);  // fine pitch: unchanged
  EXPECT_LT(benefit_at(1.6), 0.5 * base);   // coarse pitch: limited benefit
  EXPECT_LT(benefit_at(2.0), 0.35 * base);
}

// ---------------------------------------------------------------- Case 3
TEST(PaperObs9, TierPairsGrowThenPlateau) {
  const accel::CaseStudy study;
  const auto area = study.area_model();
  const core::Chip2d c2 = study.chip2d_params();
  const auto workloads = core::layer_workloads(nn::make_resnet18(), {}, {});

  const auto benefit_at = [&](std::int64_t y) {
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) {
      rs.push_back(core::evaluate_multi_tier_edp(
          w, c2, area, y, c2.bandwidth_bits_per_cycle));
    }
    return core::combine_results(rs).edp_benefit;
  };

  const double y1 = benefit_at(1);
  const double y2 = benefit_at(2);
  const double y4 = benefit_at(4);
  EXPECT_GT(y2, y1 * 1.05);               // one extra pair helps (5.7 -> 6.9)
  EXPECT_LT(y4 - y2, 0.5 * (y2 - y1));    // then it plateaus (-> ~7.1)
}

// ------------------------------------------------------------------ Obs 3
TEST(PaperObs3, SparserBaselineMemoryRaisesBenefit) {
  const auto net = nn::make_resnet18();
  accel::CaseStudy rram;
  accel::CaseStudy sram;
  sram.baseline_mem_density_handicap = 2.0;
  const double b_rram = rram.run(net).edp_benefit;
  const double b_sram = sram.run(net).edp_benefit;
  EXPECT_GE(sram.m3d_cs_count(), 14);
  EXPECT_GE(b_sram, b_rram);
}

}  // namespace
}  // namespace uld3d

#include "uld3d/accel/case_study.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::accel {
namespace {

TEST(CsDesign, AreaInCalibratedRange) {
  const CsDesign cs;
  const auto lib = tech::StdCellLibrary::make_si_cmos_130nm();
  // ~6.5 mm^2: sized so gamma_cells lands just above 7 at 64 MB.
  EXPECT_GT(cs.area_um2(lib), 5.5e6);
  EXPECT_LT(cs.area_um2(lib), 7.5e6);
}

TEST(CsDesign, GateCountAndLeakage) {
  const CsDesign cs;
  const auto lib = tech::StdCellLibrary::make_si_cmos_130nm();
  EXPECT_EQ(cs.total_gates(),
            cs.pe_rows * cs.pe_cols * cs.gates_per_pe + cs.accumulator_gates +
                cs.control_gates);
  EXPECT_GT(cs.leakage_mw(lib), 0.0);
}

TEST(CaseStudy, GammaCellsNearSeven) {
  const CaseStudy study;
  const auto area = study.area_model();
  EXPECT_GT(area.gamma_cells(), 7.0);
  EXPECT_LT(area.gamma_cells(), 8.0);
}

TEST(CaseStudy, EightParallelCss) {
  // The paper's headline configuration: N = 8 at 64 MB.
  EXPECT_EQ(CaseStudy{}.m3d_cs_count(), 8);
}

TEST(CaseStudy, FootprintPaperScale) {
  const CaseStudy study;
  const double mm2 = study.area_model().total_area_um2() / 1.0e6;
  EXPECT_GT(mm2, 50.0);
  EXPECT_LT(mm2, 90.0);
}

TEST(CaseStudy, CapacityScalesCsCount) {
  CaseStudy s12;
  s12.rram_capacity_mb = 12.0;
  CaseStudy s128;
  s128.rram_capacity_mb = 128.0;
  EXPECT_LT(s12.m3d_cs_count(), 4);
  EXPECT_GT(s128.m3d_cs_count(), 12);
}

TEST(CaseStudy, DensityHandicapAddsCss) {
  CaseStudy sram_like;
  sram_like.baseline_mem_density_handicap = 2.0;
  // Paper Observation 3: ~2x the CSs with a 2x-less-dense 2D memory.
  EXPECT_GE(sram_like.m3d_cs_count(), 14);
  EXPECT_LE(sram_like.m3d_cs_count(), 17);
}

TEST(CaseStudy, ConfigsMirrorDesigns) {
  const CaseStudy study;
  const auto c2 = study.config_2d();
  const auto c3 = study.config_3d();
  EXPECT_EQ(c2.n_cs, 1);
  EXPECT_FALSE(c2.m3d);
  EXPECT_EQ(c3.n_cs, 8);
  EXPECT_EQ(c3.n_banks, 8);
  EXPECT_TRUE(c3.m3d);
  EXPECT_DOUBLE_EQ(c2.memory.bank_read_bits_per_cycle,
                   c3.memory.bank_read_bits_per_cycle);
}

TEST(CaseStudy, AnalyticalParamsConsistentWithConfigs) {
  const CaseStudy study;
  const auto c2 = study.chip2d_params();
  const auto c3 = study.chip3d_params();
  EXPECT_DOUBLE_EQ(c2.peak_ops_per_cycle, 512.0);  // 16x16 MACs x 2 ops
  EXPECT_DOUBLE_EQ(c3.bandwidth_bits_per_cycle,
                   8.0 * c2.bandwidth_bits_per_cycle);
  EXPECT_LT(c3.alpha_pj_per_bit, c2.alpha_pj_per_bit);
  const auto c3_custom = study.chip3d_params(4);
  EXPECT_EQ(c3_custom.parallel_cs, 4);
  EXPECT_DOUBLE_EQ(c3_custom.bandwidth_bits_per_cycle,
                   4.0 * c2.bandwidth_bits_per_cycle);
}

TEST(CaseStudy, CapacityBitsConversion) {
  CaseStudy study;
  study.rram_capacity_mb = 64.0;
  EXPECT_DOUBLE_EQ(study.capacity_bits(), units::mb_to_bits(64.0));
}

TEST(CaseStudy, RunProducesFullComparison) {
  const CaseStudy study;
  const auto cmp = study.run(nn::make_resnet18());
  EXPECT_EQ(cmp.layers.size(), nn::make_resnet18().size());
  EXPECT_GT(cmp.speedup, 1.0);
  EXPECT_GT(cmp.edp_benefit, 1.0);
}

TEST(CaseStudy, InvalidConfigurationThrows) {
  CaseStudy bad;
  bad.rram_capacity_mb = 0.0;
  EXPECT_THROW(bad.area_model(), PreconditionError);
  CaseStudy bad2;
  bad2.baseline_mem_density_handicap = 0.5;
  EXPECT_THROW(bad2.area_model(), PreconditionError);
}

}  // namespace
}  // namespace uld3d::accel

#include "uld3d/sim/layer_sim.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/layer.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::sim {
namespace {

AcceleratorConfig cfg(std::int64_t n_cs) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  return n_cs == 1 ? AcceleratorConfig::baseline_2d(pdk)
                   : AcceleratorConfig::m3d_design(pdk, n_cs);
}

TEST(LayerSim, ConvComputeBoundTimesMatchTilePlan) {
  const nn::Layer conv = nn::make_conv("c", 128, 128, 28, 28, 3, 3);
  const LayerResult r = simulate_layer(conv, cfg(1));
  // 8 K-tiles x 8 C-tiles x 9 taps, 784-cycle streams + 16-cycle sync.
  const std::int64_t expected_compute = 8 * 8 * 9 * (784 + 16);
  EXPECT_DOUBLE_EQ(r.compute_cycles, expected_compute);
  EXPECT_FALSE(r.memory_bound);
  EXPECT_EQ(r.cycles, expected_compute + 200);
  EXPECT_EQ(r.cs_used, 1);
}

TEST(LayerSim, KPartitioningScalesCompute) {
  const nn::Layer conv = nn::make_conv("c", 128, 128, 28, 28, 3, 3);
  const LayerResult r1 = simulate_layer(conv, cfg(1));
  const LayerResult r8 = simulate_layer(conv, cfg(8));
  EXPECT_EQ(r8.cs_used, 8);
  EXPECT_NEAR(r8.compute_cycles, r1.compute_cycles / 8.0, 1.0);
}

TEST(LayerSim, SpeedupCappedByKTiles) {
  // K = 64 -> 4 K-tiles: only 4 of 8 CSs usable (Table I's L1 behaviour).
  const nn::Layer conv = nn::make_conv("c", 64, 64, 56, 56, 3, 3);
  const LayerResult r = simulate_layer(conv, cfg(8));
  EXPECT_EQ(r.cs_used, 4);
}

TEST(LayerSim, DownsampleUsesCPartition) {
  // 1x1 strided projection: C-partitioned (Table I's DS rows).
  const nn::Layer ds = nn::make_conv("ds", 128, 64, 28, 28, 1, 1, 2);
  const LayerResult r = simulate_layer(ds, cfg(8));
  EXPECT_EQ(r.cs_used, 4);  // ceil(64/16)
  const LayerResult r1 = simulate_layer(ds, cfg(1));
  // The serial reduction keeps DS speedup well below cs_used.
  const double speedup = static_cast<double>(r1.cycles) /
                         static_cast<double>(r.cycles);
  EXPECT_LT(speedup, 4.0);
  EXPECT_GT(speedup, 1.5);
}

TEST(LayerSim, DsPartitionRespectsConfigFlag) {
  nn::Layer ds = nn::make_conv("ds", 128, 64, 28, 28, 1, 1, 2);
  auto c = cfg(8);
  c.array.ds_input_channel_partition = false;
  const LayerResult r = simulate_layer(ds, c);
  EXPECT_EQ(r.cs_used, 8);  // back to K-partitioning
}

TEST(LayerSim, MemoryBoundLayerFlagged) {
  // An activation-heavy 1x1 layer with little compute: writing the full
  // output map at RRAM write bandwidth dominates.
  const nn::Layer conv = nn::make_conv("c", 16, 16, 224, 224, 1, 1);
  const LayerResult r = simulate_layer(conv, cfg(1));
  EXPECT_TRUE(r.memory_bound);
  EXPECT_GT(r.memory_cycles, r.compute_cycles);
}

TEST(LayerSim, InputReplicationKeepsMemoryFloor) {
  // An activation-dominated layer's memory time does not improve with N
  // (each CS re-reads the full input map).
  const nn::Layer conv = nn::make_conv("c", 256, 16, 56, 56, 1, 1);
  const LayerResult r1 = simulate_layer(conv, cfg(1));
  const LayerResult r8 = simulate_layer(conv, cfg(8));
  const double input_cycles =
      static_cast<double>(conv.input_bits(8)) / 256.0;
  EXPECT_GE(r8.memory_cycles, input_cycles - 1.0);
  EXPECT_GE(r1.memory_cycles, input_cycles - 1.0);
}

TEST(LayerSim, PoolRunsOnSharedVectorUnit) {
  const nn::Layer pool = nn::make_pool("p", 64, 56, 56, 3, 3, 2);
  const LayerResult r1 = simulate_layer(pool, cfg(1));
  const LayerResult r8 = simulate_layer(pool, cfg(8));
  EXPECT_EQ(r8.cs_used, 1);
  EXPECT_EQ(r1.cycles, r8.cycles);  // no speedup on the serial unit
}

TEST(LayerSim, PerCsVectorUnitsParallelizePool) {
  const nn::Layer pool = nn::make_pool("p", 64, 56, 56, 3, 3, 2);
  auto c = cfg(8);
  c.array.per_cs_vector_units = true;
  const LayerResult r = simulate_layer(pool, c);
  EXPECT_EQ(r.cs_used, 8);
  EXPECT_LT(r.cycles, simulate_layer(pool, cfg(8)).cycles);
}

TEST(LayerSim, EnergyComponentsSumToTotal) {
  const nn::Layer conv = nn::make_conv("c", 128, 128, 28, 28, 3, 3);
  const LayerResult r = simulate_layer(conv, cfg(8));
  EXPECT_NEAR(r.energy_pj,
              r.compute_energy_pj + r.memory_energy_pj + r.idle_energy_pj,
              1e-6);
  EXPECT_GT(r.compute_energy_pj, 0.0);
  EXPECT_GT(r.memory_energy_pj, 0.0);
  EXPECT_GT(r.idle_energy_pj, 0.0);
}

TEST(LayerSim, ComputeEnergyEqualAcrossDesigns) {
  // Same Si CMOS MACs either way (paper: E_C,3D = E_C,2D).
  const nn::Layer conv = nn::make_conv("c", 128, 128, 28, 28, 3, 3);
  EXPECT_DOUBLE_EQ(simulate_layer(conv, cfg(1)).compute_energy_pj,
                   simulate_layer(conv, cfg(8)).compute_energy_pj);
}

TEST(LayerSim, M3dAccessEnergySlightlyLower) {
  const nn::Layer conv = nn::make_conv("c", 128, 128, 28, 28, 3, 3);
  const double e2d = simulate_layer(conv, cfg(1)).memory_energy_pj;
  const double e3d = simulate_layer(conv, cfg(8)).memory_energy_pj;
  EXPECT_NEAR(e3d / e2d, 0.97, 1e-6);
}

TEST(LayerSim, UtilizationBounded) {
  for (const std::int64_t n : {1, 8}) {
    const nn::Layer conv = nn::make_conv("c", 512, 512, 7, 7, 3, 3);
    const LayerResult r = simulate_layer(conv, cfg(n));
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
  }
}

}  // namespace
}  // namespace uld3d::sim

// Malformed-input coverage for the io layer: a table of bad INI texts with
// the structured diagnostics they must produce, plus the one-shot
// validate_case_study_config() pass (all violations reported together,
// unknown keys suggested).
#include <gtest/gtest.h>

#include <string>

#include "uld3d/io/config.hpp"
#include "uld3d/io/study_config.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::io {
namespace {

TEST(ConfigMalformed, ParserRejectsStructurallyBrokenLines) {
  struct Case {
    const char* text;
    const char* why;
  };
  const Case cases[] = {
      {"[unclosed\n", "section header missing ]"},
      {"[]\n", "empty section header"},
      {"no_equals_sign\n", "key without value"},
      {"= orphan_value\n", "value without key"},
      {"[s]\n\x01\x02\xff\n", "non-UTF8 control bytes outside a pair"},
  };
  for (const Case& c : cases) {
    EXPECT_THROW(Config::parse(c.text), PreconditionError) << c.why;
  }
}

TEST(ConfigMalformed, NonUtf8BytesInsideValuesAreStoredVerbatim) {
  // Raw bytes are data, not structure: the parser keeps them and typed
  // getters reject them with a structured failure.
  const Config c = Config::parse("[s]\nx = \xc3\x28\xff\n");
  EXPECT_TRUE(c.has("s", "x"));
  EXPECT_THROW(c.get_double("s", "x", 0.0), StatusError);
}

TEST(ConfigMalformed, DuplicateSectionsMergeLastKeyWins) {
  const Config c =
      Config::parse("[s]\na = 1\n[t]\nb = 2\n[s]\na = 3\nc = 4\n");
  EXPECT_EQ(c.get_int("s", "a", 0), 3);  // later duplicate wins
  EXPECT_EQ(c.get_int("s", "c", 0), 4);  // both duplicates contribute
  EXPECT_EQ(c.get_int("t", "b", 0), 2);
}

TEST(ConfigMalformed, TrailingGarbageIsDistinctFromNotANumber) {
  const Config c = Config::parse("[s]\nx = 12abc\ny = abc\n");
  try {
    c.get_double("s", "x", 0.0);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("trailing characters"),
              std::string::npos);
  }
  try {
    c.get_double("s", "y", 0.0);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("not a number"),
              std::string::npos);
  }
}

TEST(ConfigMalformed, HugeNumbersReportOverflowExplicitly) {
  const Config c = Config::parse(
      "[s]\nbig_double = 1e999\nbig_int = 99999999999999999999999\n");
  try {
    c.get_double("s", "big_double", 0.0);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("overflow"), std::string::npos);
  }
  try {
    c.get_int("s", "big_int", 0);
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("overflow"), std::string::npos);
  }
}

TEST(ConfigMalformed, IntTrailingGarbageAndFloatsRejected) {
  const Config c = Config::parse("[s]\nx = 12.5\ny = 7 seven\n");
  EXPECT_THROW(c.get_int("s", "x", 0), StatusError);  // "." is trailing
  EXPECT_THROW(c.get_int("s", "y", 0), StatusError);
}

TEST(StudyConfigValidate, CleanConfigsPass) {
  const Config empty;
  EXPECT_TRUE(validate_case_study_config(empty).ok());
  const Config defaults =
      case_study_to_config(accel::CaseStudy{});
  const Diagnostics diag = validate_case_study_config(defaults);
  EXPECT_TRUE(diag.ok()) << diag.to_string();
  EXPECT_EQ(diag.warning_count(), 0u) << diag.to_string();
}

TEST(StudyConfigValidate, ReportsAllViolationsInOneShot) {
  // Three independent problems; all must be present in one Diagnostics.
  const Config c = Config::parse(
      "[study]\ncapacity_mb = -4\n"
      "[node]\nfeature_nm = not_a_number\n"
      "[rram]\nperiph_area_fraction = 1.5\n");
  const Diagnostics diag = validate_case_study_config(c);
  EXPECT_FALSE(diag.ok());
  EXPECT_EQ(diag.error_count(), 3u) << diag.to_string();
}

TEST(StudyConfigValidate, UnknownKeySuggestsNearestMatch) {
  const Config c = Config::parse("[study]\ncapcity_mb = 64\n");
  const Diagnostics diag = validate_case_study_config(c);
  EXPECT_TRUE(diag.ok());  // typo is a warning, not an error
  EXPECT_EQ(diag.warning_count(), 1u);
  ASSERT_TRUE(diag.has(ErrorCode::kUnknownKey));
  const std::string s = diag.to_string();
  EXPECT_NE(s.find("capcity_mb"), std::string::npos);
  EXPECT_NE(s.find("did_you_mean=capacity_mb"), std::string::npos);
}

TEST(StudyConfigValidate, UnknownSectionSuggestsNearestMatch) {
  const Config c = Config::parse("[rramm]\nbits_per_cell = 2\n");
  const Diagnostics diag = validate_case_study_config(c);
  EXPECT_TRUE(diag.ok());
  ASSERT_TRUE(diag.has(ErrorCode::kUnknownKey));
  EXPECT_NE(diag.to_string().find("did_you_mean=rram"), std::string::npos);
}

TEST(StudyConfigValidate, RangeChecksCoverIntegerKeys) {
  const Config c = Config::parse("[cs]\npe_rows = 0\npe_cols = -2\n");
  const Diagnostics diag = validate_case_study_config(c);
  EXPECT_EQ(diag.error_count(), 2u) << diag.to_string();
  EXPECT_TRUE(diag.has(ErrorCode::kInvalidConfig));
}

TEST(StudyConfigValidate, OverflowSurfacesAsInvalidConfig) {
  const Config c = Config::parse("[study]\ncapacity_mb = 1e999\n");
  const Diagnostics diag = validate_case_study_config(c);
  EXPECT_FALSE(diag.ok());
  EXPECT_TRUE(diag.has(ErrorCode::kInvalidConfig));
  EXPECT_NE(diag.to_string().find("overflow"), std::string::npos);
}

}  // namespace
}  // namespace uld3d::io

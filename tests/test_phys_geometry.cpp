#include "uld3d/phys/geometry.hpp"

#include <gtest/gtest.h>

namespace uld3d::phys {
namespace {

TEST(Rect, BasicsAndConstruction) {
  const Rect r = Rect::at(1.0, 2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center().x, 2.5);
  EXPECT_DOUBLE_EQ(r.center().y, 4.0);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(Rect{}.valid());
}

TEST(Rect, OverlapIsOpenInterval) {
  const Rect a = Rect::at(0, 0, 2, 2);
  EXPECT_TRUE(a.overlaps(Rect::at(1, 1, 2, 2)));
  EXPECT_FALSE(a.overlaps(Rect::at(2, 0, 2, 2)));  // touching edges are fine
  EXPECT_FALSE(a.overlaps(Rect::at(5, 5, 1, 1)));
  EXPECT_TRUE(a.overlaps(a));
}

TEST(Rect, Containment) {
  const Rect outer = Rect::at(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect::at(2, 2, 3, 3)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect::at(8, 8, 3, 3)));
  EXPECT_TRUE(outer.contains(Point{5.0, 5.0}));
  EXPECT_FALSE(outer.contains(Point{10.0, 5.0}));  // half-open
}

TEST(Geometry, OverlapArea) {
  const Rect a = Rect::at(0, 0, 4, 4);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect::at(2, 2, 4, 4)), 4.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect::at(10, 10, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, a), 16.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect::at(4, 0, 2, 2)), 0.0);  // touching
}

TEST(Geometry, CenterDistanceIsManhattan) {
  const Rect a = Rect::at(0, 0, 2, 2);   // center (1, 1)
  const Rect b = Rect::at(4, 6, 2, 2);   // center (5, 7)
  EXPECT_DOUBLE_EQ(center_distance(a, b), 4.0 + 6.0);
  EXPECT_DOUBLE_EQ(center_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(center_distance(a, b), center_distance(b, a));
}

}  // namespace
}  // namespace uld3d::phys

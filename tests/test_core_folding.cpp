#include "uld3d/core/folding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

TEST(Folding, OneTierIsIdentity) {
  FoldingInputs in;
  in.tiers = 1;
  const FoldingBenefit b = evaluate_folding(in);
  EXPECT_DOUBLE_EQ(b.footprint_ratio, 1.0);
  EXPECT_DOUBLE_EQ(b.wirelength_ratio, 1.0);
  EXPECT_DOUBLE_EQ(b.energy_ratio, 1.0);
  EXPECT_DOUBLE_EQ(b.delay_ratio, 1.0);
  EXPECT_DOUBLE_EQ(b.edp_benefit, 1.0);
}

TEST(Folding, TwoTierBenefitInPaperRange) {
  // Paper Sec. I: folding approaches offer ~1.1-1.4x EDP [3-4].
  const FoldingBenefit b = evaluate_folding({});
  EXPECT_GT(b.edp_benefit, 1.1);
  EXPECT_LT(b.edp_benefit, 1.4);
  EXPECT_DOUBLE_EQ(b.footprint_ratio, 0.5);  // ~50% footprint reduction [3-4]
  EXPECT_NEAR(b.wirelength_ratio, 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Folding, FoldingFarBelowArchitecturalBenefits) {
  // The paper's core claim: folding alone cannot approach 5x+.
  for (const int tiers : {2, 3, 4, 8}) {
    FoldingInputs in;
    in.tiers = tiers;
    EXPECT_LT(evaluate_folding(in).edp_benefit, 2.0) << tiers;
  }
}

TEST(Folding, MoreTiersMonotonicallyBetter) {
  double previous = 1.0;
  for (const int tiers : {2, 3, 4}) {
    FoldingInputs in;
    in.tiers = tiers;
    const double edp = evaluate_folding(in).edp_benefit;
    EXPECT_GT(edp, previous);
    previous = edp;
  }
}

TEST(Folding, NoWireEnergyNoBenefitOnEnergySide) {
  FoldingInputs in;
  in.wire_energy_fraction = 0.0;
  in.buffer_energy_fraction = 0.0;
  const FoldingBenefit b = evaluate_folding(in);
  EXPECT_DOUBLE_EQ(b.energy_ratio, 1.0);
  EXPECT_LT(b.delay_ratio, 1.0);  // wires still speed up
}

TEST(Folding, WireDominatedDesignGainsMore) {
  FoldingInputs light;
  light.wire_energy_fraction = 0.1;
  light.wire_delay_fraction = 0.1;
  FoldingInputs heavy;
  heavy.wire_energy_fraction = 0.6;
  heavy.wire_delay_fraction = 0.6;
  EXPECT_GT(evaluate_folding(heavy).edp_benefit,
            evaluate_folding(light).edp_benefit);
}

TEST(Folding, Validation) {
  FoldingInputs bad;
  bad.tiers = 0;
  EXPECT_THROW(evaluate_folding(bad), PreconditionError);
  FoldingInputs bad2;
  bad2.wire_energy_fraction = 1.0;
  EXPECT_THROW(evaluate_folding(bad2), PreconditionError);
  FoldingInputs bad3;
  bad3.wire_energy_fraction = 0.7;
  bad3.buffer_energy_fraction = 0.4;  // sums past 1
  EXPECT_THROW(evaluate_folding(bad3), PreconditionError);
}

}  // namespace
}  // namespace uld3d::core

#include "uld3d/mapper/cost_model.hpp"

#include <gtest/gtest.h>

#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::mapper {
namespace {

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx) {
  nn::ConvSpec s;
  s.name = "c";
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = 1;
  return s;
}

TEST(CostModel, PicksACandidateAndPricesIt) {
  const auto arch = make_table2_architecture(1);
  const LayerCost cost = evaluate_conv(conv(256, 96, 27, 5), arch, {}, 1);
  EXPECT_FALSE(cost.mapping_order.empty());
  EXPECT_GT(cost.latency_cycles, 0.0);
  EXPECT_GT(cost.energy_pj, 0.0);
  EXPECT_NEAR(cost.energy_pj,
              cost.mac_energy_pj + cost.buffer_energy_pj + cost.rram_energy_pj +
                  cost.idle_energy_pj,
              1e-6 * cost.energy_pj);
}

TEST(CostModel, ParallelismSpeedsUpCompute) {
  const auto arch = make_table2_architecture(1);
  const LayerCost c1 = evaluate_conv(conv(512, 256, 28, 3), arch, {}, 1);
  const LayerCost c8 = evaluate_conv(conv(512, 256, 28, 3), arch, {}, 8);
  EXPECT_EQ(c8.cs_used, 8);
  EXPECT_LT(c8.latency_cycles, c1.latency_cycles / 6.0);
}

TEST(CostModel, HybridSplitUsesOutputRows) {
  // K = 32 gives only one K-tile on a 32-wide array, but the OY dimension
  // still parallelizes across CSs.
  const auto arch = make_table2_architecture(3);  // spatial (32, 32)
  const LayerCost c8 = evaluate_conv(conv(32, 64, 28, 3), arch, {}, 8);
  EXPECT_GT(c8.cs_used, 1);
}

TEST(CostModel, MacEnergyIndependentOfParallelism) {
  const auto arch = make_table2_architecture(1);
  const LayerCost c1 = evaluate_conv(conv(512, 256, 28, 3), arch, {}, 1);
  const LayerCost c8 = evaluate_conv(conv(512, 256, 28, 3), arch, {}, 8);
  EXPECT_DOUBLE_EQ(c1.mac_energy_pj, c8.mac_energy_pj);
}

TEST(CostModel, NetworkCostSumsLayers) {
  const auto arch = make_table2_architecture(6);
  const nn::Network net = nn::make_alexnet();
  const NetworkCost cost = evaluate_network(net, arch, {}, 4);
  ASSERT_EQ(cost.layers.size(), net.size());
  double latency = 0.0;
  double energy = 0.0;
  for (const auto& l : cost.layers) {
    latency += l.latency_cycles;
    energy += l.energy_pj;
  }
  EXPECT_NEAR(cost.latency_cycles, latency, 1e-6 * latency);
  EXPECT_NEAR(cost.energy_pj, energy, 1e-6 * energy);
  EXPECT_DOUBLE_EQ(cost.edp(), cost.latency_cycles * cost.energy_pj);
}

TEST(CostModel, VectorLayersRunSerially) {
  const auto arch = make_table2_architecture(1);
  const nn::Network net = nn::make_resnet18();
  const NetworkCost c1 = evaluate_network(net, arch, {}, 1);
  const NetworkCost c8 = evaluate_network(net, arch, {}, 8);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!net.layer(i).is_conv()) {
      EXPECT_EQ(c8.layers[i].cs_used, 1) << net.layer(i).name();
      EXPECT_NEAR(c8.layers[i].latency_cycles, c1.layers[i].latency_cycles,
                  1e-9) << net.layer(i).name();
    }
  }
}

TEST(CostModel, ArchAreaModelHasPaperScaleRatios) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  for (const auto& arch : table2_architectures()) {
    const core::AreaModel area = arch_area_model(arch, pdk);
    EXPECT_GT(area.gamma_cells(), 3.0) << arch.name;
    EXPECT_LT(area.gamma_cells(), 25.0) << arch.name;
    const std::int64_t n = m3d_parallel_cs(arch, pdk);
    // Fig. 7's design points host roughly 6-14 parallel CSs.
    EXPECT_GE(n, 5) << arch.name;
    EXPECT_LE(n, 16) << arch.name;
  }
}

TEST(CostModel, BenefitBundleConsistent) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(4);
  const DesignPointBenefit b = evaluate_benefit(net, arch, {}, pdk);
  EXPECT_EQ(b.cost_2d.n_cs, 1);
  EXPECT_EQ(b.cost_3d.n_cs, b.n_cs);
  EXPECT_NEAR(b.speedup,
              b.cost_2d.latency_cycles / b.cost_3d.latency_cycles, 1e-9);
  EXPECT_NEAR(b.edp_benefit, b.cost_2d.edp() / b.cost_3d.edp(), 1e-9);
  EXPECT_GT(b.edp_benefit, 1.0);
}

TEST(CostModel, RejectsBadCsCount) {
  const auto arch = make_table2_architecture(1);
  EXPECT_THROW(evaluate_conv(conv(16, 16, 4, 1), arch, {}, 0),
               PreconditionError);
}

class ArchSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArchSweep, EnergyRatioNearUnity) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(GetParam());
  const DesignPointBenefit b = evaluate_benefit(net, arch, {}, pdk);
  EXPECT_GT(b.energy_ratio, 0.95) << arch.name;
  EXPECT_LT(b.energy_ratio, 1.05) << arch.name;
}

TEST_P(ArchSweep, BenefitWithinPaperBallpark) {
  // Paper Fig. 7: 5.3x-11.5x across the six architectures.  Allow margin.
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(GetParam());
  const DesignPointBenefit b = evaluate_benefit(net, arch, {}, pdk);
  EXPECT_GT(b.edp_benefit, 4.5) << arch.name;
  EXPECT_LT(b.edp_benefit, 14.0) << arch.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, ArchSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace uld3d::mapper

#include "uld3d/phys/thermal_map.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

tech::TierStack stack() { return tech::TierStack::make_m3d_130nm(); }

TEST(ThermalMap, NoPowerNoRise) {
  const PowerModel empty;
  const ThermalMap map(empty, stack(), 2000.0, 2000.0, 1200.0);
  EXPECT_DOUBLE_EQ(map.max_rise_k(), 0.0);
  EXPECT_DOUBLE_EQ(map.mean_rise_k(), 0.0);
}

TEST(ThermalMap, UniformPowerGivesUniformRise) {
  PowerModel power;
  power.add({"u", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 2000, 2000),
             100.0});
  const ThermalMap map(power, stack(), 2000.0, 2000.0, 1200.0, 250.0, 0);
  EXPECT_GT(map.max_rise_k(), 0.0);
  EXPECT_NEAR(map.max_rise_k(), map.mean_rise_k(),
              0.01 * map.max_rise_k());
}

TEST(ThermalMap, HotspotPeaksAboveMean) {
  PowerModel power;
  power.add({"bg", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 4000, 4000),
             10.0});
  power.add({"hot", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 500, 500),
             40.0});
  const ThermalMap map(power, stack(), 4000.0, 4000.0, 1200.0);
  EXPECT_GT(map.max_rise_k(), 3.0 * map.mean_rise_k());
  // The hotspot sits at the lower-left corner.
  EXPECT_GT(map.rise_at(100.0, 100.0), map.rise_at(3800.0, 3800.0));
}

TEST(ThermalMap, SmoothingSpreadsButConservesOrder) {
  PowerModel power;
  power.add({"hot", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 500, 500),
             40.0});
  const ThermalMap sharp(power, stack(), 4000.0, 4000.0, 1200.0, 250.0, 0);
  const ThermalMap smooth(power, stack(), 4000.0, 4000.0, 1200.0, 250.0, 4);
  EXPECT_LT(smooth.max_rise_k(), sharp.max_rise_k());
  // The neighbour of the hotspot warms up under smoothing.
  EXPECT_GT(smooth.rise_at(700.0, 100.0), sharp.rise_at(700.0, 100.0));
}

TEST(ThermalMap, BiggerSinkResistanceRunsHotter) {
  PowerModel power;
  power.add({"u", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 2000, 2000),
             50.0});
  const ThermalMap cool(power, stack(), 2000.0, 2000.0, 600.0);
  const ThermalMap hot(power, stack(), 2000.0, 2000.0, 2400.0);
  EXPECT_GT(hot.max_rise_k(), cool.max_rise_k());
}

TEST(ThermalMap, AsciiRampEndsWithStats) {
  PowerModel power;
  power.add({"u", tech::TierKind::kSiCmosFeol, Rect::at(0, 0, 2000, 2000),
             50.0});
  const ThermalMap map(power, stack(), 2000.0, 2000.0, 1200.0);
  const std::string s = map.to_ascii();
  EXPECT_NE(s.find("peak rise"), std::string::npos);
  EXPECT_NE(s.find("mean"), std::string::npos);
}

TEST(ThermalMap, Validation) {
  const PowerModel power;
  EXPECT_THROW(ThermalMap(power, stack(), 0.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(ThermalMap(power, stack(), 1.0, 1.0, -1.0), PreconditionError);
  EXPECT_THROW(ThermalMap(power, stack(), 1.0, 1.0, 1.0, 0.0),
               PreconditionError);
  EXPECT_THROW(ThermalMap(power, stack(), 1.0, 1.0, 1.0, 1.0, -1),
               PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

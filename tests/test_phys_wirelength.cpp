#include "uld3d/phys/wirelength.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

TEST(Wirelength, AverageGrowsWithGateCount) {
  const WirelengthParams p;
  const double small = donath_average_wirelength_um(10000, 1.0e6, p);
  const double large = donath_average_wirelength_um(1000000, 1.0e8, p);
  EXPECT_GT(large, small);  // same pitch, more gates -> longer average
}

TEST(Wirelength, DonathExponentLaw) {
  // At fixed pitch, L_avg ~ N^(p-0.5).
  const WirelengthParams p;
  const double pitch_area = 100.0;  // um^2 per gate
  const double l1 = donath_average_wirelength_um(1 << 10, pitch_area * (1 << 10), p);
  const double l2 = donath_average_wirelength_um(1 << 20, pitch_area * (1 << 20), p);
  EXPECT_NEAR(l2 / l1, std::pow(2.0, (p.rent_exponent - 0.5) * 10.0), 1e-6);
}

TEST(Wirelength, LowRentIsLocal) {
  WirelengthParams p;
  p.rent_exponent = 0.4;
  const double avg = donath_average_wirelength_um(1000000, 1.0e8, p);
  EXPECT_NEAR(avg, 2.0 * 10.0, 1e-9);  // 2 pitches at 10 um pitch
}

TEST(Wirelength, TotalIsAverageTimesWires) {
  const WirelengthParams p;
  const double avg = donath_average_wirelength_um(50000, 5.0e6, p);
  EXPECT_NEAR(donath_total_wirelength_um(50000, 5.0e6, p),
              avg * p.wires_per_gate * 50000.0, 1e-6);
}

TEST(Wirelength, FoldingScale) {
  EXPECT_DOUBLE_EQ(folding_scale(1), 1.0);
  EXPECT_NEAR(folding_scale(2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(folding_scale(4), 0.5, 1e-12);
  // Two-tier folding shortens wires ~29% — the [3-4] folding regime.
  EXPECT_NEAR(1.0 - folding_scale(2), 0.293, 0.01);
}

TEST(Wirelength, BufferCountLinearInLength) {
  const WirelengthParams p;
  EXPECT_EQ(estimate_buffers(0.0, p), 0);
  EXPECT_EQ(estimate_buffers(15000.0, p), 10);  // 1500 um interval
  EXPECT_EQ(estimate_buffers(30000.0, p), 2 * estimate_buffers(15000.0, p));
}

TEST(Wirelength, Validation) {
  const WirelengthParams p;
  EXPECT_THROW(donath_average_wirelength_um(0, 1.0, p), PreconditionError);
  EXPECT_THROW(donath_average_wirelength_um(10, 0.0, p), PreconditionError);
  EXPECT_THROW(folding_scale(0), PreconditionError);
  EXPECT_THROW(estimate_buffers(-1.0, p), PreconditionError);
  WirelengthParams bad;
  bad.rent_exponent = 1.0;
  EXPECT_THROW(donath_average_wirelength_um(10, 1.0, bad), PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

// Reproduces Fig. 5: speedup, energy, and EDP benefit of the Sec.-II M3D
// accelerator vs. the 2D baseline across AI/ML models.
//
// Paper reference: 5.7x-7.5x speedup at ~0.99x energy => 5.7x-7.5x EDP.
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig5_models", argc, argv);
  const accel::CaseStudy study;
  const char* model_names[] = {"AlexNet", "VGG-16", "ResNet-18",
                               "ResNet-152"};

  const auto results = h.time("evaluate_models", [&] {
    std::vector<std::pair<std::string, sim::DesignComparison>> out;
    for (const char* name : model_names) {
      const nn::Network net = nn::make_network(name);
      out.emplace_back(net.name(), study.run(net));
    }
    return out;
  });

  Table table({"Model", "Speedup", "Energy (M3D/2D)", "EDP benefit"});
  for (const auto& [name, cmp] : results) {
    table.add_row({name, format_ratio(cmp.speedup),
                   format_ratio(cmp.energy_ratio, 3),
                   format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Fig. 5: M3D vs 2D for AI/ML model inference "
              "(paper range: 5.7x-7.5x EDP at ~0.99x energy)", "fig5_models");

  double min_edp = results.front().second.edp_benefit;
  double max_edp = min_edp;
  for (const auto& [name, cmp] : results) {
    min_edp = std::min(min_edp, cmp.edp_benefit);
    max_edp = std::max(max_edp, cmp.edp_benefit);
    std::string slug = name;
    std::replace(slug.begin(), slug.end(), '-', '_');
    std::transform(slug.begin(), slug.end(), slug.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    h.value(slug + "_edp_benefit", cmp.edp_benefit, "ratio");
  }
  h.value("min_edp_benefit", min_edp, "ratio");
  h.value("max_edp_benefit", max_edp, "ratio");
  return h.finish();
}

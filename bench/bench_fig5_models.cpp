// Reproduces Fig. 5: speedup, energy, and EDP benefit of the Sec.-II M3D
// accelerator vs. the 2D baseline across AI/ML models.
//
// Paper reference: 5.7x-7.5x speedup at ~0.99x energy => 5.7x-7.5x EDP.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;
  const accel::CaseStudy study;

  Table table({"Model", "Speedup", "Energy (M3D/2D)", "EDP benefit"});
  for (const char* name : {"AlexNet", "VGG-16", "ResNet-18", "ResNet-152"}) {
    const nn::Network net = nn::make_network(name);
    const sim::DesignComparison cmp = study.run(net);
    table.add_row({net.name(), format_ratio(cmp.speedup),
                   format_ratio(cmp.energy_ratio, 3),
                   format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Fig. 5: M3D vs 2D for AI/ML model inference "
              "(paper range: 5.7x-7.5x EDP at ~0.99x energy)", "fig5_models");
  return 0;
}

// EXTENSION: joint spatial-mapping search (ZigZag's "enlarging joint
// architecture-mapping design space").  For each Table-II architecture,
// compare its fixed dataflow against a per-layer best spatial unrolling at
// the same PE budget — quantifying what a reconfigurable array would add on
// top of the M3D benefits.
#include <algorithm>
#include <iostream>
#include <vector>

#include "uld3d/dse/sweep.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/parallel.hpp"

namespace {

struct SearchRow {
  std::string name;
  uld3d::mapper::SearchedNetworkCost searched_2d;
  double benefit_fixed = 0.0;
  double benefit_searched = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("ext_spatial_search", argc, argv);
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;

  const auto rows = h.time("spatial_search", [&] {
    std::vector<SearchRow> out;
    for (const auto& arch : mapper::table2_architectures()) {
      const std::int64_t n = mapper::m3d_parallel_cs(arch, pdk);
      SearchRow row;
      row.name = arch.name;
      row.searched_2d = mapper::evaluate_network_with_search(net, arch, sys, 1);
      const auto searched_3d =
          mapper::evaluate_network_with_search(net, arch, sys, n);
      row.benefit_fixed = row.searched_2d.fixed.edp() / searched_3d.fixed.edp();
      row.benefit_searched =
          row.searched_2d.searched.edp() / searched_3d.searched.edp();
      out.push_back(std::move(row));
    }
    return out;
  });

  Table table({"Architecture", "Fixed EDP (cyc*J)", "Searched EDP",
               "Mapping gain", "M3D EDP benefit (fixed)",
               "M3D EDP benefit (searched)"});
  double max_mapping_gain = 0.0;
  for (const auto& row : rows) {
    max_mapping_gain =
        std::max(max_mapping_gain, row.searched_2d.edp_improvement());
    table.add_row({row.name,
                   format_double(row.searched_2d.fixed.edp() / 1.0e12, 1),
                   format_double(row.searched_2d.searched.edp() / 1.0e12, 1),
                   format_ratio(row.searched_2d.edp_improvement()),
                   format_ratio(row.benefit_fixed),
                   format_ratio(row.benefit_searched)});
  }
  emit_table(std::cout, table,
             "Extension: per-layer spatial-mapping search on AlexNet "
             "(mapping gain is orthogonal to the M3D benefit)",
             "ext_spatial_search");

  h.value("arch1_m3d_benefit_fixed", rows.front().benefit_fixed, "ratio");
  h.value("arch1_m3d_benefit_searched", rows.front().benefit_searched,
          "ratio");
  h.value("max_mapping_gain", max_mapping_gain, "ratio");

  // --- mapping-cache hit rate (fidelity): one cold searched-network pass,
  //     serial so the hit/miss sequence is exactly reproducible.  Hits come
  //     from the search re-pricing the fixed dataflow and the identity
  //     unrolling it already evaluated. ---
  mapper::MapCache& cache = mapper::MapCache::instance();
  cache.set_enabled(true);
  cache.clear();
  cache.reset_counters();
  parallel::set_jobs(1);
  (void)mapper::evaluate_network_with_search(
      net, mapper::table2_architectures().front(), sys, 1);
  const double lookups = static_cast<double>(cache.hits() + cache.misses());
  h.value("mapcache_cold_hit_rate",
          lookups > 0.0 ? static_cast<double>(cache.hits()) / lookups : 0.0,
          "fraction");
  parallel::set_jobs(0);

  // --- parallel sweep speedup (timing): a 32x16 grid of distinct conv
  //     pricings through dse::run_sweep at 1 vs 4 jobs.  The cache is off —
  //     cross-run hits would fake the 4-job time — and the shapes are all
  //     distinct anyway.  On a single-core host both land near 1x, so the
  //     gate stays advisory (see EXPERIMENTS.md). ---
  cache.set_enabled(false);
  dse::Grid grid;
  std::vector<double> ks;
  std::vector<double> cs;
  for (int i = 0; i < 32; ++i) ks.push_back(static_cast<double>(16 + 8 * i));
  for (int i = 0; i < 16; ++i) cs.push_back(static_cast<double>(8 + 4 * i));
  grid.axis("k", ks).axis("c", cs);
  const auto arch1 = mapper::table2_architectures().front();
  const auto price_point = [&](const std::vector<double>& p) {
    nn::ConvSpec conv;
    conv.name = "sweep";
    conv.k = static_cast<std::int64_t>(p[0]);
    conv.c = static_cast<std::int64_t>(p[1]);
    conv.ox = 28;
    conv.oy = 28;
    conv.fx = 3;
    conv.fy = 3;
    conv.stride = 1;
    // A full per-point spatial search (not just one pricing) so each grid
    // point carries enough work for the parallel split to matter.
    const auto searched = mapper::search_spatial(conv, arch1, sys, 4);
    return std::vector<double>{searched.cost.latency_cycles *
                               searched.cost.energy_pj};
  };
  const auto sweep_at = [&](int jobs) {
    return dse::run_sweep(grid, {"edp"}, price_point,
                          {dse::ErrorPolicy::kSkipAndRecord, jobs, {}, {}});
  };
  (void)h.time("sweep512_jobs1", [&] { return sweep_at(1); });
  (void)h.time("sweep512_jobs4", [&] { return sweep_at(4); });
  cache.set_enabled(true);
  const double t1 = h.stats("sweep512_jobs1").median_s;
  const double t4 = h.stats("sweep512_jobs4").median_s;
  if (t1 > 0.0 && t4 > 0.0) {
    h.timing_value("parallel_sweep_speedup_jobs4", t1 / t4, "ratio");
    // Lower-is-better mirror of the speedup, matching the one-sided
    // "current must not exceed baseline" direction of the timing gate.
    h.timing_value("parallel_sweep_time_ratio_jobs4", t4 / t1, "ratio");
  }
  return h.finish();
}

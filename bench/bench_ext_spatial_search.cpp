// EXTENSION: joint spatial-mapping search (ZigZag's "enlarging joint
// architecture-mapping design space").  For each Table-II architecture,
// compare its fixed dataflow against a per-layer best spatial unrolling at
// the same PE budget — quantifying what a reconfigurable array would add on
// top of the M3D benefits.
#include <iostream>

#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"

int main() {
  using namespace uld3d;
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;

  Table table({"Architecture", "Fixed EDP (cyc*J)", "Searched EDP",
               "Mapping gain", "M3D EDP benefit (fixed)",
               "M3D EDP benefit (searched)"});
  for (const auto& arch : mapper::table2_architectures()) {
    const std::int64_t n = mapper::m3d_parallel_cs(arch, pdk);
    const auto searched_2d =
        mapper::evaluate_network_with_search(net, arch, sys, 1);
    const auto searched_3d =
        mapper::evaluate_network_with_search(net, arch, sys, n);
    const double benefit_fixed =
        searched_2d.fixed.edp() / searched_3d.fixed.edp();
    const double benefit_searched =
        searched_2d.searched.edp() / searched_3d.searched.edp();
    table.add_row({arch.name,
                   format_double(searched_2d.fixed.edp() / 1.0e12, 1),
                   format_double(searched_2d.searched.edp() / 1.0e12, 1),
                   format_ratio(searched_2d.edp_improvement()),
                   format_ratio(benefit_fixed), format_ratio(benefit_searched)});
  }
  emit_table(std::cout, table,
             "Extension: per-layer spatial-mapping search on AlexNet "
             "(mapping gain is orthogonal to the M3D benefit)",
             "ext_spatial_search");
  return 0;
}

// EXTENSION: joint spatial-mapping search (ZigZag's "enlarging joint
// architecture-mapping design space").  For each Table-II architecture,
// compare its fixed dataflow against a per-layer best spatial unrolling at
// the same PE budget — quantifying what a reconfigurable array would add on
// top of the M3D benefits.
#include <algorithm>
#include <iostream>
#include <vector>

#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"

namespace {

struct SearchRow {
  std::string name;
  uld3d::mapper::SearchedNetworkCost searched_2d;
  double benefit_fixed = 0.0;
  double benefit_searched = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("ext_spatial_search", argc, argv);
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;

  const auto rows = h.time("spatial_search", [&] {
    std::vector<SearchRow> out;
    for (const auto& arch : mapper::table2_architectures()) {
      const std::int64_t n = mapper::m3d_parallel_cs(arch, pdk);
      SearchRow row;
      row.name = arch.name;
      row.searched_2d = mapper::evaluate_network_with_search(net, arch, sys, 1);
      const auto searched_3d =
          mapper::evaluate_network_with_search(net, arch, sys, n);
      row.benefit_fixed = row.searched_2d.fixed.edp() / searched_3d.fixed.edp();
      row.benefit_searched =
          row.searched_2d.searched.edp() / searched_3d.searched.edp();
      out.push_back(std::move(row));
    }
    return out;
  });

  Table table({"Architecture", "Fixed EDP (cyc*J)", "Searched EDP",
               "Mapping gain", "M3D EDP benefit (fixed)",
               "M3D EDP benefit (searched)"});
  double max_mapping_gain = 0.0;
  for (const auto& row : rows) {
    max_mapping_gain =
        std::max(max_mapping_gain, row.searched_2d.edp_improvement());
    table.add_row({row.name,
                   format_double(row.searched_2d.fixed.edp() / 1.0e12, 1),
                   format_double(row.searched_2d.searched.edp() / 1.0e12, 1),
                   format_ratio(row.searched_2d.edp_improvement()),
                   format_ratio(row.benefit_fixed),
                   format_ratio(row.benefit_searched)});
  }
  emit_table(std::cout, table,
             "Extension: per-layer spatial-mapping search on AlexNet "
             "(mapping gain is orthogonal to the M3D benefit)",
             "ext_spatial_search");

  h.value("arch1_m3d_benefit_fixed", rows.front().benefit_fixed, "ratio");
  h.value("arch1_m3d_benefit_searched", rows.front().benefit_searched,
          "ratio");
  h.value("max_mapping_gain", max_mapping_gain, "ratio");
  return h.finish();
}

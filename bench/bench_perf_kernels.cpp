// google-benchmark microbenchmarks of the library's computational kernels:
// network simulation, mapper evaluation, analytical model, placement, and
// the full flow.  These measure the cost of the tools themselves (useful
// when sweeping large design spaces), not the modeled hardware.
#include <benchmark/benchmark.h>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/util/units.hpp"

namespace {

using namespace uld3d;

void BM_SimulateResNet18(benchmark::State& state) {
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const auto cfg = study.config_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_network(net, cfg));
  }
}
BENCHMARK(BM_SimulateResNet18);

void BM_SimulateResNet152(benchmark::State& state) {
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet152();
  const auto cfg = study.config_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_network(net, cfg));
  }
}
BENCHMARK(BM_SimulateResNet152);

void BM_MapperAlexNet(benchmark::State& state) {
  const auto arch = mapper::make_table2_architecture(
      static_cast<int>(state.range(0)));
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper::evaluate_network(net, arch, sys, 8));
  }
}
BENCHMARK(BM_MapperAlexNet)->DenseRange(1, 6);

void BM_AnalyticalNetworkWorkload(benchmark::State& state) {
  const nn::Network net = nn::make_resnet152();
  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::network_workload(net, traffic, part));
  }
}
BENCHMARK(BM_AnalyticalNetworkWorkload);

void BM_AnalyticalEdp(benchmark::State& state) {
  const accel::CaseStudy study;
  const core::Chip2d c2 = study.chip2d_params();
  const core::Chip3d c3 = study.chip3d_params();
  const core::WorkloadPoint w = core::synthetic_workload(4.0, 1.0e9, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_edp(w, c2, c3));
  }
}
BENCHMARK(BM_AnalyticalEdp);

phys::FlowInput case_study_flow_input() {
  const accel::CaseStudy study;
  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram = units::kb_to_bits(study.cs.sram_buffer_kb) *
                      study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram;
  input.cs_logic_area_um2 = study.cs.area_um2(study.pdk.si_library()) - sram;
  input.cs_logic_gates = study.cs.total_gates();
  return input;
}

void BM_PhysicalDesignFlow2d(benchmark::State& state) {
  const phys::FlowInput input = case_study_flow_input();
  const phys::M3dFlow flow;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run_design(input, false, 1));
  }
}
BENCHMARK(BM_PhysicalDesignFlow2d);

void BM_PhysicalDesignFlowM3d(benchmark::State& state) {
  const phys::FlowInput input = case_study_flow_input();
  const phys::M3dFlow flow;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run_design(input, true, 8));
  }
}
BENCHMARK(BM_PhysicalDesignFlowM3d);

}  // namespace

BENCHMARK_MAIN();

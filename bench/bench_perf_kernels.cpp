// google-benchmark microbenchmarks of the library's computational kernels:
// network simulation, mapper evaluation, analytical model, placement, and
// the full flow.  These measure the cost of the tools themselves (useful
// when sweeping large design spaces), not the modeled hardware.
#include <benchmark/benchmark.h>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/trace.hpp"
#include "uld3d/util/units.hpp"

namespace {

using namespace uld3d;

void BM_SimulateResNet18(benchmark::State& state) {
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const auto cfg = study.config_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_network(net, cfg));
  }
}
BENCHMARK(BM_SimulateResNet18);

void BM_SimulateResNet152(benchmark::State& state) {
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet152();
  const auto cfg = study.config_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_network(net, cfg));
  }
}
BENCHMARK(BM_SimulateResNet152);

void BM_MapperAlexNet(benchmark::State& state) {
  const auto arch = mapper::make_table2_architecture(
      static_cast<int>(state.range(0)));
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper::evaluate_network(net, arch, sys, 8));
  }
}
BENCHMARK(BM_MapperAlexNet)->DenseRange(1, 6);

void BM_AnalyticalNetworkWorkload(benchmark::State& state) {
  const nn::Network net = nn::make_resnet152();
  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::network_workload(net, traffic, part));
  }
}
BENCHMARK(BM_AnalyticalNetworkWorkload);

void BM_AnalyticalEdp(benchmark::State& state) {
  const accel::CaseStudy study;
  const core::Chip2d c2 = study.chip2d_params();
  const core::Chip3d c3 = study.chip3d_params();
  const core::WorkloadPoint w = core::synthetic_workload(4.0, 1.0e9, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_edp(w, c2, c3));
  }
}
BENCHMARK(BM_AnalyticalEdp);

phys::FlowInput case_study_flow_input() {
  const accel::CaseStudy study;
  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram = units::kb_to_bits(study.cs.sram_buffer_kb) *
                      study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram;
  input.cs_logic_area_um2 = study.cs.area_um2(study.pdk.si_library()) - sram;
  input.cs_logic_gates = study.cs.total_gates();
  return input;
}

void BM_PhysicalDesignFlow2d(benchmark::State& state) {
  const phys::FlowInput input = case_study_flow_input();
  const phys::M3dFlow flow;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run_design(input, false, 1));
  }
}
BENCHMARK(BM_PhysicalDesignFlow2d);

void BM_PhysicalDesignFlowM3d(benchmark::State& state) {
  const phys::FlowInput input = case_study_flow_input();
  const phys::M3dFlow flow;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run_design(input, true, 8));
  }
}
BENCHMARK(BM_PhysicalDesignFlowM3d);

// --- instrumentation overhead ------------------------------------------------
// The contract is zero-cost-when-disabled: a disabled counter add or span is a
// single relaxed atomic load plus a branch.  The Disabled variants quantify
// the tax the instrumented kernels above pay by default; the Enabled variants
// bound the cost when --profile / --trace is on.

void BM_MetricsCounterDisabled(benchmark::State& state) {
  MetricsRegistry::set_enabled(false);
  Counter& c = MetricsRegistry::instance().counter("bench.overhead.counter");
  for (auto _ : state) {
    c.add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsCounterEnabled(benchmark::State& state) {
  MetricsRegistry::set_enabled(true);
  Counter& c = MetricsRegistry::instance().counter("bench.overhead.counter");
  for (auto _ : state) {
    c.add();
    benchmark::ClobberMemory();
  }
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset_values();
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  TraceRecorder::instance().set_enabled(false);
  for (auto _ : state) {
    TraceSpan span("bench.overhead.span", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  TraceRecorder::instance().clear();
  TraceRecorder::instance().set_enabled(true);
  for (auto _ : state) {
    TraceSpan span("bench.overhead.span", "bench");
    benchmark::ClobberMemory();
  }
  TraceRecorder::instance().set_enabled(false);
  TraceRecorder::instance().clear();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_SimulateResNet18Instrumented(benchmark::State& state) {
  MetricsRegistry::set_enabled(true);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const auto cfg = study.config_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_network(net, cfg));
  }
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset_values();
}
BENCHMARK(BM_SimulateResNet18Instrumented);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the library's computational kernels: network
// simulation, mapper evaluation, analytical model, placement, and the full
// flow.  These measure the cost of the tools themselves (useful when
// sweeping large design spaces), not the modeled hardware.
//
// Formerly a google-benchmark binary; now on the shared util/bench harness
// so the kernels emit the same BENCH_*.json artifact as the reproduction
// suites.  Fast kernels time a fixed inner-loop batch and report ns/op as
// named timing values; the instrumentation-overhead numbers keep their
// contract:
// a *disabled* counter add or trace span must stay in the
// single-relaxed-load-plus-branch cost class.
#include <cstdint>
#include <iostream>
#include <limits>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/mapper/batch_eval.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/flightrec.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/rng.hpp"
#include "uld3d/util/simd.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"
#include "uld3d/util/units.hpp"

namespace {

using namespace uld3d;

constexpr std::int64_t kCounterOps = 1 << 20;  // 1Mi adds per timed sample
constexpr std::int64_t kSpanOps = 1 << 16;     // 64Ki spans per timed sample

phys::FlowInput case_study_flow_input() {
  const accel::CaseStudy study;
  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram = units::kb_to_bits(study.cs.sram_buffer_kb) *
                      study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram;
  input.cs_logic_area_um2 = study.cs.area_um2(study.pdk.si_library()) - sram;
  input.cs_logic_gates = study.cs.total_gates();
  return input;
}

double ns_per_op(const bench::Stats& stats, std::int64_t ops) {
  return stats.median_s / static_cast<double>(ops) * 1e9;
}

/// A large deterministic candidate pool for the SoA batch-eval kernels:
/// the three real candidates of a ResNet-ish conv, replicated with jittered
/// traffic volumes so every slot prices differently (the jitter scales keep
/// all quantities positive and finite).
std::vector<mapper::TemporalMapping> synthetic_candidates(
    const nn::ConvSpec& conv, const mapper::Architecture& arch,
    std::size_t n) {
  const auto seeds = mapper::candidate_mappings(conv, arch);
  std::vector<mapper::TemporalMapping> out;
  out.reserve(n);
  Rng rng(0x5eedcafe);
  const auto jitter = [&](mapper::OperandTraffic& t) {
    const double s = 0.5 + rng.uniform();
    t.reg_bits *= s;
    t.local_bits *= s;
    t.global_bits *= s;
    t.rram_read_bits *= s;
    t.rram_write_bits *= s;
  };
  for (std::size_t i = 0; i < n; ++i) {
    mapper::TemporalMapping m = seeds[i % seeds.size()];
    m.compute_cycles *= 0.5 + rng.uniform();
    jitter(m.weights);
    jitter(m.inputs);
    jitter(m.outputs);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("perf_kernels", argc, argv);
  const accel::CaseStudy study;
  const nn::Network resnet18 = nn::make_resnet18();
  const nn::Network resnet152 = nn::make_resnet152();
  const auto cfg3d = study.config_3d();

  // --- simulation / mapper / analytical kernels -----------------------------
  const auto sim18 = h.time("simulate_resnet18",
                            [&] { return sim::simulate_network(resnet18, cfg3d); });
  h.time("simulate_resnet152",
         [&] { return sim::simulate_network(resnet152, cfg3d); });

  {
    const auto arch = mapper::make_table2_architecture(1);
    const nn::Network alexnet = nn::make_alexnet();
    const mapper::SystemCosts sys;
    h.time("mapper_alexnet_arch1",
           [&] { return mapper::evaluate_network(alexnet, arch, sys, 8); });
  }

  // --- SoA batch candidate evaluation vs the seed scalar loop ---------------
  // 4096 jittered candidates priced per sample.  The scalar leg is the seed
  // path (price_candidate_scalar + strict-< argmin); the batch leg is
  // evaluate_candidates with whatever SIMD dispatch the host offers.  Both
  // must crown the same winner — that agreement is a hard fidelity value.
  double batch_winner_edp = 0.0;
  double batch_scalar_winner_match = 0.0;
  {
    const auto arch = mapper::make_table2_architecture(1);
    const mapper::SystemCosts sys;
    nn::ConvSpec conv;
    conv.name = "bench";
    conv.k = 256;
    conv.c = 128;
    conv.ox = 28;
    conv.oy = 28;
    conv.fx = 3;
    conv.fy = 3;
    const std::size_t kCandidates = 4096;
    const auto pool = synthetic_candidates(conv, arch, kCandidates);

    const auto scalar_eval = [&] {
      mapper::LayerCost best;
      double best_edp = std::numeric_limits<double>::infinity();
      for (const auto& m : pool) {
        mapper::LayerCost c =
            mapper::price_candidate_scalar(conv, m, arch, sys, 8);
        const double edp = c.latency_cycles * c.energy_pj;
        if (edp < best_edp) {
          best_edp = edp;
          best = c;
        }
      }
      return best;
    };
    mapper::CandidateBatch scratch;
    const auto batch_eval = [&] {
      return mapper::evaluate_candidates(conv, pool, arch, sys, 8, scratch);
    };

    const mapper::LayerCost scalar_best = scalar_eval();
    const mapper::LayerCost batch_best = batch_eval();
    batch_winner_edp = batch_best.latency_cycles * batch_best.energy_pj;
    batch_scalar_winner_match =
        (batch_best.latency_cycles == scalar_best.latency_cycles &&
         batch_best.energy_pj == scalar_best.energy_pj &&
         batch_best.mapping_order == scalar_best.mapping_order)
            ? 1.0
            : 0.0;

    h.time("candidate_eval_scalar_4k", scalar_eval);
    h.time("candidate_eval_batch_4k", batch_eval);
  }

  {
    const core::TrafficOptions traffic;
    const core::PartitionOptions part;
    h.time("analytical_network_workload",
           [&] { return core::network_workload(resnet152, traffic, part); });
  }

  double anchor_edp_benefit = 0.0;
  {
    const core::Chip2d c2 = study.chip2d_params();
    const core::Chip3d c3 = study.chip3d_params();
    const core::WorkloadPoint w = core::synthetic_workload(4.0, 1.0e9, 16);
    anchor_edp_benefit = core::evaluate_edp(w, c2, c3).edp_benefit;
    h.time("analytical_edp_4096", [&] {
      double acc = 0.0;
      for (int i = 0; i < 4096; ++i) {
        acc += core::evaluate_edp(w, c2, c3).edp_benefit;
      }
      return acc;
    });
  }

  {
    const phys::FlowInput input = case_study_flow_input();
    const phys::M3dFlow flow;
    h.time("phys_flow_2d", [&] { return flow.run_design(input, false, 1); });
    h.time("phys_flow_m3d", [&] { return flow.run_design(input, true, 8); });
  }

  // --- instrumentation overhead ---------------------------------------------
  // The contract is zero-cost-when-disabled: a disabled counter add or span
  // is a single relaxed atomic load plus a branch.  The Disabled timings
  // quantify the tax the instrumented kernels above pay by default; the
  // Enabled timings bound the cost when --profile / --trace is on.
  Counter& counter = MetricsRegistry::instance().counter("bench.overhead.counter");

  MetricsRegistry::set_enabled(false);
  h.time("metrics_counter_disabled_1m", [&] {
    for (std::int64_t i = 0; i < kCounterOps; ++i) {
      counter.add();
      bench::do_not_optimize(counter);
    }
  });
  MetricsRegistry::set_enabled(true);
  h.time("metrics_counter_enabled_1m", [&] {
    for (std::int64_t i = 0; i < kCounterOps; ++i) {
      counter.add();
      bench::do_not_optimize(counter);
    }
  });
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset_values();

  // Note: since the flight recorder landed, a "disabled" TraceSpan still
  // writes one always-on flightrec begin/end record pair (~two ring pushes),
  // so trace_span_disabled_ns_per_op bounds flightrec span cost too.
  TraceRecorder::instance().set_enabled(false);
  h.time("trace_span_disabled_64k", [&] {
    for (std::int64_t i = 0; i < kSpanOps; ++i) {
      TraceSpan span("bench.overhead.span", "bench");
      bench::do_not_optimize(span);
    }
  });
  TraceRecorder::instance().clear();
  TraceRecorder::instance().set_enabled(true);
  h.time("trace_span_enabled_64k", [&] {
    TraceRecorder::instance().clear();
    for (std::int64_t i = 0; i < kSpanOps; ++i) {
      TraceSpan span("bench.overhead.span", "bench");
      bench::do_not_optimize(span);
    }
  });
  TraceRecorder::instance().set_enabled(false);
  TraceRecorder::instance().clear();

  // Telemetry events share the contract: a disabled emit_* is one relaxed
  // atomic load plus a predicted branch (no sink open by default).  The
  // sink reference is hoisted like real emit sites do (they cache it — or
  // the enabled() bool — outside their loops).  The enabled number bounds
  // the serialize-and-buffer cost per event; the write(2)s land in
  // /dev/null so the sample times the library, not a disk.
  EventSink& sink = EventSink::instance();
  h.time("telemetry_event_disabled_1m", [&] {
    for (std::int64_t i = 0; i < kCounterOps; ++i) {
      sink.emit_stage("bench.overhead.event", 1.0);
      bench::do_not_optimize(i);
    }
  });
  sink.open("/dev/null");
  h.time("telemetry_event_enabled_64k", [&] {
    for (std::int64_t i = 0; i < kSpanOps; ++i) {
      sink.emit_stage("bench.overhead.event", 1.0);
      bench::do_not_optimize(i);
    }
  });
  sink.close();

  // The flight recorder has no disabled state — its whole point is being
  // there when a crash happens — so these pin its absolute cost: a ring
  // record is a relaxed fetch_add plus a fixed-size slot fill, targeted at
  // the single-digit-ns class.
  h.time("flightrec_event_1m", [&] {
    for (std::int64_t i = 0; i < kCounterOps; ++i) {
      flightrec::event("bench.overhead.flightrec",
                       static_cast<std::uint64_t>(i));
      bench::do_not_optimize(i);
    }
  });
  h.time("flightrec_span_pair_1m", [&] {
    for (std::int64_t i = 0; i < kCounterOps; ++i) {
      flightrec::span_begin("bench.overhead.flightrec");
      flightrec::span_end();
      bench::do_not_optimize(i);
    }
  });

  MetricsRegistry::set_enabled(true);
  h.time("simulate_resnet18_instrumented",
         [&] { return sim::simulate_network(resnet18, cfg3d); });
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset_values();

  // --- named values: per-op overheads + a model-fidelity anchor -------------
  // The overhead numbers come from the wall clock, so they are recorded as
  // timing values: the comparator gates them with --time-tol (advisory on
  // shared runners), never with the exact fidelity gate.
  h.timing_value("counter_disabled_ns_per_op",
                 ns_per_op(h.stats("metrics_counter_disabled_1m"), kCounterOps),
                 "ns");
  h.timing_value("counter_enabled_ns_per_op",
                 ns_per_op(h.stats("metrics_counter_enabled_1m"), kCounterOps),
                 "ns");
  h.timing_value("trace_span_disabled_ns_per_op",
                 ns_per_op(h.stats("trace_span_disabled_64k"), kSpanOps), "ns");
  h.timing_value("trace_span_enabled_ns_per_op",
                 ns_per_op(h.stats("trace_span_enabled_64k"), kSpanOps), "ns");
  h.timing_value(
      "telemetry_event_disabled_ns_per_op",
      ns_per_op(h.stats("telemetry_event_disabled_1m"), kCounterOps), "ns");
  h.timing_value("telemetry_event_enabled_ns_per_op",
                 ns_per_op(h.stats("telemetry_event_enabled_64k"), kSpanOps),
                 "ns");
  h.timing_value("flightrec_event_ns_per_op",
                 ns_per_op(h.stats("flightrec_event_1m"), kCounterOps), "ns");
  h.timing_value("flightrec_span_pair_ns_per_op",
                 ns_per_op(h.stats("flightrec_span_pair_1m"), kCounterOps),
                 "ns");
  {
    const double plain = h.stats("simulate_resnet18").median_s;
    const double instrumented =
        h.stats("simulate_resnet18_instrumented").median_s;
    if (plain > 0.0) {
      h.timing_value("sim_instrumentation_overhead", instrumented / plain,
                     "ratio");
    }
  }
  {
    const std::size_t kCandidates = 4096;
    const double scalar_ns =
        ns_per_op(h.stats("candidate_eval_scalar_4k"),
                  static_cast<std::int64_t>(kCandidates));
    const double batch_ns = ns_per_op(h.stats("candidate_eval_batch_4k"),
                                      static_cast<std::int64_t>(kCandidates));
    h.timing_value("candidate_eval_scalar_ns_per_candidate", scalar_ns, "ns");
    h.timing_value("candidate_eval_batch_ns_per_candidate", batch_ns, "ns");
    if (batch_ns > 0.0) {
      h.timing_value("candidate_eval_batch_speedup", scalar_ns / batch_ns,
                     "ratio");
    }
  }
  // A deterministic model output pins fidelity alongside the timings: the
  // synthetic-workload EDP benefit the analytical kernel computes.
  h.value("synthetic_edp_benefit_anchor", anchor_edp_benefit, "ratio");
  // Batch-eval fidelity: the batched argmin's winner EDP (deterministic on
  // the fixed synthetic pool) and its agreement with the scalar winner.
  // Both are exact-gated — a dispatch-dependent value here would mean the
  // determinism contract of DESIGN.md §16 is broken.
  h.value("batch_candidate_winner_edp", batch_winner_edp, "cycles*pJ");
  h.value("batch_scalar_winner_match", batch_scalar_winner_match, "bool");
  bench::do_not_optimize(sim18);
  return h.finish();
}

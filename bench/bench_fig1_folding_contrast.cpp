// Reproduces the paper's framing contrast (Sec. I / Fig. 1): folding an
// existing 2D design into M3D yields only ~1.1-1.4x EDP [3-4]; the new
// iso-footprint architectural design points yield 5x+.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/folding.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;

  Table table({"Approach", "Footprint", "Wirelength", "Energy", "Delay",
               "EDP benefit"});

  // Folding-only M3D at 2 and 3 device tiers.
  for (const int tiers : {2, 3}) {
    core::FoldingInputs in;
    in.tiers = tiers;
    const core::FoldingBenefit f = core::evaluate_folding(in);
    table.add_row({"Fold existing design, " + std::to_string(tiers) + " tiers",
                   format_ratio(f.footprint_ratio, 2),
                   format_ratio(f.wirelength_ratio, 2),
                   format_ratio(f.energy_ratio, 2),
                   format_ratio(f.delay_ratio, 2),
                   format_ratio(f.edp_benefit, 2)});
  }

  // The paper's architectural design point (iso-footprint!).
  const accel::CaseStudy study;
  const auto cmp = study.run(nn::make_resnet18());
  table.add_row({"New M3D arch. point (this paper)", "1.00x", "~1x/CS",
                 format_ratio(cmp.energy_ratio, 2),
                 format_ratio(1.0 / cmp.speedup, 2),
                 format_ratio(cmp.edp_benefit, 2)});

  emit_table(std::cout, table,
              "Fig. 1 contrast: folding-only M3D (~1.1-1.4x [3-4]) vs the "
              "paper's architectural design points (ResNet-18)", "fig1_folding_contrast");
  std::cout << "Folding saves wire energy/delay but adds no parallelism or "
               "bandwidth; the architectural co-design does.\n";
  return 0;
}

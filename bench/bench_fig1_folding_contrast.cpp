// Reproduces the paper's framing contrast (Sec. I / Fig. 1): folding an
// existing 2D design into M3D yields only ~1.1-1.4x EDP [3-4]; the new
// iso-footprint architectural design points yield 5x+.
#include <iostream>
#include <tuple>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/folding.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig1_folding_contrast", argc, argv);

  const auto [fold2, fold3, cmp] = h.time("evaluate", [] {
    core::FoldingInputs in2;
    in2.tiers = 2;
    core::FoldingInputs in3;
    in3.tiers = 3;
    const accel::CaseStudy study;
    return std::make_tuple(core::evaluate_folding(in2),
                           core::evaluate_folding(in3),
                           study.run(nn::make_resnet18()));
  });

  Table table({"Approach", "Footprint", "Wirelength", "Energy", "Delay",
               "EDP benefit"});
  const auto fold_row = [&](int tiers, const core::FoldingBenefit& f) {
    table.add_row({"Fold existing design, " + std::to_string(tiers) + " tiers",
                   format_ratio(f.footprint_ratio, 2),
                   format_ratio(f.wirelength_ratio, 2),
                   format_ratio(f.energy_ratio, 2),
                   format_ratio(f.delay_ratio, 2),
                   format_ratio(f.edp_benefit, 2)});
  };
  fold_row(2, fold2);
  fold_row(3, fold3);

  // The paper's architectural design point (iso-footprint!).
  table.add_row({"New M3D arch. point (this paper)", "1.00x", "~1x/CS",
                 format_ratio(cmp.energy_ratio, 2),
                 format_ratio(1.0 / cmp.speedup, 2),
                 format_ratio(cmp.edp_benefit, 2)});

  emit_table(std::cout, table,
              "Fig. 1 contrast: folding-only M3D (~1.1-1.4x [3-4]) vs the "
              "paper's architectural design points (ResNet-18)", "fig1_folding_contrast");
  std::cout << "Folding saves wire energy/delay but adds no parallelism or "
               "bandwidth; the architectural co-design does.\n";

  h.value("fold_2tier_edp_benefit", fold2.edp_benefit, "ratio");
  h.value("fold_3tier_edp_benefit", fold3.edp_benefit, "ratio");
  h.value("arch_point_edp_benefit", cmp.edp_benefit, "ratio");
  h.value("arch_point_speedup", cmp.speedup, "ratio");
  return h.finish();
}

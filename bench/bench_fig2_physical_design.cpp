// Reproduces the Fig. 2 physical-design comparison (Sec. II): post-"route"
// summaries of the 2D baseline and the iso-footprint M3D design, plus
// Observation 2 (upper-tier power <1%, peak power density +~1%).
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"
#include "uld3d/util/units.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig2_physical_design", argc, argv);
  const accel::CaseStudy study;

  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram_area = units::kb_to_bits(study.cs.sram_buffer_kb) *
                           study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram_area;
  input.cs_logic_area_um2 =
      study.cs.area_um2(study.pdk.si_library()) - sram_area;
  input.cs_logic_gates = study.cs.total_gates();

  const phys::M3dFlow flow;
  const phys::FlowComparison cmp = h.time("run_comparison", [&] {
    return flow.run_comparison(input, study.m3d_cs_count());
  });

  const auto row = [](const phys::DesignReport& r) {
    return std::vector<std::string>{
        r.name,
        format_double(r.footprint_mm2, 1),
        std::to_string(r.cs_placed),
        format_double(r.si_utilization * 100.0, 1) + "%",
        format_double(r.total_wirelength_um / 1.0e6, 2),
        std::to_string(r.buffers),
        format_double(r.timing.achieved_frequency_mhz, 1),
        format_double(r.total_power_mw, 1),
        format_double(r.upper_tier_power_fraction * 100.0, 2) + "%",
        format_double(r.peak_density_mw_per_mm2, 2),
        r.feasible ? "yes" : "NO"};
  };

  Table table({"Design", "Footprint mm2", "CSs", "Si util", "WL (m)",
               "Buffers", "Freq MHz", "Power mW", "Upper-tier P",
               "Peak mW/mm2", "Feasible"});
  table.add_row(row(cmp.design_2d));
  table.add_row(row(cmp.design_3d));
  emit_table(std::cout, table, "Fig. 2: post-route 2D vs iso-footprint M3D summary", "fig2_physical_design");

  std::cout << "Iso-footprint: " << (cmp.iso_footprint ? "yes" : "no")
            << "\nWirelength per CS (M3D/2D): "
            << format_ratio(cmp.wirelength_per_cs_ratio, 3)
            << "\nPeak power density (M3D/2D): "
            << format_ratio(cmp.peak_density_ratio, 4)
            << "  (paper Obs. 2: ~1.01x)"
            << "\nM3D vertical ILVs: " << cmp.design_3d.ilv_count / 1000000
            << "M\n";

  // Placement scaling: one auto-sized M3D run_design per bank count.  The
  // RRAM capacity scales with the banks (8 MB per CS, the case-study ratio)
  // so every point is feasible at its own die; wall-clock tracks how the
  // placement engine scales with design size, and the HPWL/utilization
  // fidelity values pin the placement itself bit-for-bit.
  for (const std::int64_t banks : {std::int64_t{1}, std::int64_t{8},
                                   std::int64_t{32}}) {
    phys::FlowInput scaled = input;
    scaled.rram_capacity_bits = units::mb_to_bits(8.0 * static_cast<double>(banks));
    const phys::DesignReport r =
        h.time("run_design_banks" + std::to_string(banks),
               [&] { return flow.run_design(scaled, /*m3d=*/true, banks); });
    const std::string prefix = "banks" + std::to_string(banks) + "_";
    h.value(prefix + "feasible", r.feasible ? 1.0 : 0.0, "bool");
    h.value(prefix + "total_hpwl_um", r.placement_hpwl_um, "um");
    h.value(prefix + "si_utilization", r.si_utilization, "fraction");
  }

  h.value("iso_footprint", cmp.iso_footprint ? 1.0 : 0.0, "bool");
  h.value("peak_density_ratio", cmp.peak_density_ratio, "ratio");
  h.value("wirelength_per_cs_ratio", cmp.wirelength_per_cs_ratio, "ratio");
  h.value("upper_tier_power_fraction",
          cmp.design_3d.upper_tier_power_fraction, "fraction");
  return h.finish();
}

// Reproduces Fig. 8 / Observation 5: EDP benefit of M3D design points that
// trade parallel CSs against per-CS bandwidth, for compute-bound and
// memory-bound synthetic workloads.
//
// Paper reference: 16 ops/bit (compute-bound) => ~2.1x better EDP from 2x
// CSs at unchanged bandwidth; 16 bits/op (memory-bound) => ~2.1x better EDP
// from 2x bandwidth per CS even with 2x fewer CSs.
#include <iostream>
#include <utility>

#include "uld3d/core/edp_model.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

uld3d::core::Chip2d baseline() {
  uld3d::core::Chip2d c2;
  c2.bandwidth_bits_per_cycle = 256.0;
  c2.peak_ops_per_cycle = 512.0;
  c2.alpha_pj_per_bit = 1.5;
  c2.compute_pj_per_op = 1.0;
  c2.cs_idle_pj_per_cycle = 2.0;
  c2.mem_idle_pj_per_cycle = 10.0;
  return c2;
}

/// An M3D design point with `n_cs` CSs, each with `bw_scale` x the baseline
/// per-CS bandwidth.
uld3d::core::Chip3d design_point(std::int64_t n_cs, double bw_scale) {
  uld3d::core::Chip3d c3;
  c3.parallel_cs = n_cs;
  c3.bandwidth_bits_per_cycle =
      256.0 * bw_scale * static_cast<double>(n_cs);
  c3.alpha_pj_per_bit = 1.5 * 0.97;
  c3.mem_idle_pj_per_cycle = 10.0 * (1.0 + 0.3 * static_cast<double>(n_cs - 1));
  return c3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig8_bandwidth_cs", argc, argv);
  const core::Chip2d c2 = baseline();
  const double d0 = 64.0 * 1024.0 * 1024.0;  // 8 MB of traffic

  const auto sweep = [&] {
    std::vector<std::pair<std::string, Table>> tables;
    for (const double ops_per_bit : {16.0, 1.0, 1.0 / 16.0}) {
      const core::WorkloadPoint w =
          core::synthetic_workload(ops_per_bit, d0, /*max_partitions=*/64);
      const char* regime = ops_per_bit > 1.0   ? "compute-bound"
                           : ops_per_bit < 1.0 ? "memory-bound"
                                               : "balanced";
      Table table({"CSs \\ BW/CS", "0.5x", "1x", "2x", "4x"});
      for (const std::int64_t n : {1, 2, 4, 8, 16}) {
        std::vector<std::string> row{std::to_string(n) + " CS"};
        for (const double bw : {0.5, 1.0, 2.0, 4.0}) {
          const core::EdpResult r =
              core::evaluate_edp(w, c2, design_point(n, bw));
          row.push_back(format_ratio(r.edp_benefit));
        }
        table.add_row(std::move(row));
      }
      tables.emplace_back(std::string("Fig. 8: EDP benefit vs (#CS, per-CS "
                                      "bandwidth), ") +
                              format_double(ops_per_bit, 3) + " ops/bit (" +
                              regime + ")",
                          std::move(table));
    }
    return tables;
  };
  const auto tables = h.time("sweep_grid", sweep);
  for (const auto& [title, table] : tables) {
    emit_table(std::cout, table, title, "fig8_bandwidth_cs");
  }

  // Observation 5 headline numbers.
  const core::WorkloadPoint compute_bound =
      core::synthetic_workload(16.0, d0, 64);
  const core::WorkloadPoint memory_bound =
      core::synthetic_workload(1.0 / 16.0, d0, 64);
  const double cb =
      core::evaluate_edp(compute_bound, c2, design_point(2, 1.0)).edp_benefit;
  const double mb_fewer =
      core::evaluate_edp(memory_bound, c2, design_point(1, 2.0)).edp_benefit /
      core::evaluate_edp(memory_bound, c2, design_point(2, 1.0)).edp_benefit;
  std::cout << "Obs. 5a: compute-bound (16 ops/bit), 2x CSs, same BW -> "
            << format_ratio(cb) << " EDP (paper ~2.1x)\n"
            << "Obs. 5b: memory-bound (16 bits/op), 2x BW with 2x fewer CSs "
               "vs 2x CSs -> "
            << format_ratio(mb_fewer) << " relative EDP gain (paper ~2.1x)\n";

  h.value("obs5a_compute_bound_edp", cb, "ratio");
  h.value("obs5b_memory_bound_relative_gain", mb_fewer, "ratio");
  return h.finish();
}

// Ablation study of the Sec.-II accelerator's mapping mechanisms: how much
// of the Table-I result depends on each design choice the simulator models.
//
//   - channel/tap packing for small-C layers (the CONV1 optimization)
//   - C-partitioning of downsample projections
//   - the single shared vector unit (vs. one per CS)
//   - double buffering of weight-tile loads (ablated via sync inflation)
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

using namespace uld3d;

sim::DesignComparison run_variant(const accel::CaseStudy& study,
                                  const nn::Network& net,
                                  bool ds_c_partition, bool per_cs_vector,
                                  std::int64_t extra_sync) {
  auto c2 = study.config_2d();
  auto c3 = study.config_3d();
  for (auto* cfg : {&c2, &c3}) {
    cfg->array.ds_input_channel_partition = ds_c_partition;
    cfg->array.per_cs_vector_units = per_cs_vector;
    cfg->array.tile_sync_cycles += extra_sync;
  }
  return sim::compare_designs(net, c2, c3);
}

struct Variant {
  const char* name;
  bool ds_c_partition;
  bool per_cs_vector;
  std::int64_t extra_sync;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("ablation_mapping", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();

  const Variant variants[] = {
      {"baseline (paper configuration)", true, false, 0},
      {"- DS C-partitioning (K-split DS)", false, false, 0},
      {"+ per-CS vector units", true, true, 0},
      {"- double buffering (4x sync)", true, false, 48},
      {"all relaxations", false, true, 48},
  };

  const auto results = h.time("ablation_sweep", [&] {
    std::vector<sim::DesignComparison> out;
    for (const auto& v : variants) {
      out.push_back(run_variant(study, net, v.ds_c_partition, v.per_cs_vector,
                                v.extra_sync));
    }
    return out;
  });

  Table table({"Variant", "Speedup", "Energy", "EDP benefit"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.add_row({variants[i].name, format_ratio(results[i].speedup),
                   format_ratio(results[i].energy_ratio, 3),
                   format_ratio(results[i].edp_benefit)});
  }
  emit_table(std::cout, table,
              "Ablation: Sec.-II mapping mechanisms on ResNet-18 "
              "(paper configuration = Table I)", "ablation_mapping");
  std::cout << "The shared vector unit is the largest single lever: residual "
               "adds and pooling bound the M3D speedup (Amdahl).\n";

  h.value("baseline_edp_benefit", results.front().edp_benefit, "ratio");
  h.value("per_cs_vector_edp_benefit", results[2].edp_benefit, "ratio");
  h.value("all_relaxations_edp_benefit", results.back().edp_benefit, "ratio");
  return h.finish();
}

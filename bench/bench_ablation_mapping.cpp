// Ablation study of the Sec.-II accelerator's mapping mechanisms: how much
// of the Table-I result depends on each design choice the simulator models.
//
//   - channel/tap packing for small-C layers (the CONV1 optimization)
//   - C-partitioning of downsample projections
//   - the single shared vector unit (vs. one per CS)
//   - double buffering of weight-tile loads (ablated via sync inflation)
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

using namespace uld3d;

sim::DesignComparison run_variant(const accel::CaseStudy& study,
                                  const nn::Network& net,
                                  bool ds_c_partition, bool per_cs_vector,
                                  std::int64_t extra_sync) {
  auto c2 = study.config_2d();
  auto c3 = study.config_3d();
  for (auto* cfg : {&c2, &c3}) {
    cfg->array.ds_input_channel_partition = ds_c_partition;
    cfg->array.per_cs_vector_units = per_cs_vector;
    cfg->array.tile_sync_cycles += extra_sync;
  }
  return sim::compare_designs(net, c2, c3);
}

}  // namespace

int main() {
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();

  struct Variant {
    const char* name;
    bool ds_c_partition;
    bool per_cs_vector;
    std::int64_t extra_sync;
  };
  const Variant variants[] = {
      {"baseline (paper configuration)", true, false, 0},
      {"- DS C-partitioning (K-split DS)", false, false, 0},
      {"+ per-CS vector units", true, true, 0},
      {"- double buffering (4x sync)", true, false, 48},
      {"all relaxations", false, true, 48},
  };

  Table table({"Variant", "Speedup", "Energy", "EDP benefit"});
  for (const auto& v : variants) {
    const auto cmp =
        run_variant(study, net, v.ds_c_partition, v.per_cs_vector, v.extra_sync);
    table.add_row({v.name, format_ratio(cmp.speedup),
                   format_ratio(cmp.energy_ratio, 3),
                   format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Ablation: Sec.-II mapping mechanisms on ResNet-18 "
              "(paper configuration = Table I)", "ablation_mapping");
  std::cout << "The shared vector unit is the largest single lever: residual "
               "adds and pooling bound the M3D speedup (Amdahl).\n";
  return 0;
}

// Reproduces Case 2 / Observation 8: EDP benefit vs. M3D vertical via (ILV)
// pitch scale beta.  Every M3D memory cell needs `m` ILVs to the access-FET
// tier above; once the cell becomes via-pitch-limited its area grows as
// beta^2, the common footprint grows, and the re-optimized 2D baseline gains
// CSs of its own (same machinery as Case 1).
//
// Paper reference: benefits unchanged up to beta ~1.3x; transitioning to
// coarse-pitch vias (>=1.6x) leaves limited to no benefit over 2D.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/relaxed_baseline.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct PitchRow {
  double beta = 0.0;
  double pitch_nm = 0.0;
  double scale = 0.0;
  uld3d::core::RelaxedDesignPoint point;
  uld3d::core::EdpResult total;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("obs8_via_pitch", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const core::Chip2d c2 = study.chip2d_params();
  const core::AreaModel area = study.area_model();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};

  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  const auto rows = h.time("pitch_sweep", [&] {
    std::vector<PitchRow> out;
    for (const double beta :
         {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0, 2.5}) {
      const auto scaled_pdk = study.pdk.with_ilv_pitch_scale(beta);
      PitchRow row;
      row.beta = beta;
      row.pitch_nm = scaled_pdk.ilv().pitch_nm;
      row.scale =
          scaled_pdk.rram_bit_area_m3d_um2() / study.pdk.rram_bit_area_um2();
      row.point = core::relaxed_design_point(area, row.scale);
      std::vector<core::EdpResult> layer_results;
      for (const auto& w : workloads) {
        layer_results.push_back(core::evaluate_relaxed_edp(w, c2, row.point, bw));
      }
      row.total = core::combine_results(layer_results);
      out.push_back(row);
    }
    return out;
  });

  Table table({"beta (ILV pitch)", "pitch (nm)", "M3D cell area scale",
               "N_2D", "N_3D", "EDP benefit"});
  for (const auto& row : rows) {
    table.add_row({format_ratio(row.beta, 1),
                   format_double(row.pitch_nm, 0),
                   format_ratio(row.scale, 2), std::to_string(row.point.n_2d),
                   std::to_string(row.point.n_3d),
                   format_ratio(row.total.edp_benefit)});
    h.value("edp_benefit_beta_" + format_double(row.beta, 1),
            row.total.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
              "Obs. 8: EDP benefit vs ILV pitch scale, ResNet-18 "
              "(paper: flat to ~1.3x, limited benefit at >=1.6x)", "obs8_via_pitch");
  return h.finish();
}

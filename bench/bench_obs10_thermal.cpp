// Reproduces Eq. 17 / Observation 10: temperature rise of stacked
// interleaved compute+memory tier pairs, and the maximum stack height under
// a ~60 K budget [20].  Also cross-checks Observation 2: the single-pair
// Sec.-II M3D design adds negligible heat.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/multi_tier.hpp"
#include "uld3d/core/thermal.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;
  const accel::CaseStudy study;
  const core::AreaModel area = study.area_model();
  const double die_mm2 = area.total_area_um2() / 1.0e6;

  // Per-pair vertical resistance from the PDK tier stack, normalised to the
  // case-study die; sink resistance for a passive heat spreader.
  const auto stack = tech::TierStack::make_m3d_130nm();
  double pair_r_mm2 = 0.0;
  for (const auto& tier : stack.tiers()) pair_r_mm2 += tier.thermal_resistance_mm2_k_per_w;
  const double pair_r = pair_r_mm2 / die_mm2;
  const double sink_r = 1200.0 / die_mm2;  // mm^2*K/W spreader-to-ambient

  Table table({"Tier pairs Y", "N (CSs)", "Total power (W)", "Temp rise (K)",
               "Within 60 K budget"});
  for (std::int64_t y = 1; y <= 12; ++y) {
    const std::int64_t n = core::multi_tier_parallel_cs(area, y);
    // Each pair dissipates its CS group's power plus its memory tier.
    const double pair_power_w =
        (static_cast<double>(n) / static_cast<double>(y) * 4.0 + 2.5) * 1.0e-3 *
        20.0;  // mW-per-MHz scaled to 20 MHz operation, per pair
    core::ThermalStack thermal(sink_r);
    for (std::int64_t j = 0; j < y; ++j) {
      thermal.add_tier({pair_r, pair_power_w});
    }
    const double rise = thermal.temperature_rise_k();
    table.add_row({std::to_string(y), std::to_string(n),
                   format_double(pair_power_w * static_cast<double>(y), 3),
                   format_double(rise, 2), rise <= 60.0 ? "yes" : "NO"});
  }
  emit_table(std::cout, table,
              "Obs. 10 (Eq. 17): temperature rise vs interleaved tier pairs", "obs10_thermal");

  const core::ThermalTier per_tier{pair_r, 8.0 * 4.0 * 20.0 * 1.0e-3 + 0.05};
  std::cout << "Max tier pairs within a 60 K budget (paper Obs. 10 bound): "
            << core::ThermalStack::max_tier_pairs(sink_r, per_tier, 60.0)
            << "\n";
  return 0;
}

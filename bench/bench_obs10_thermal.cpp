// Reproduces Eq. 17 / Observation 10: temperature rise of stacked
// interleaved compute+memory tier pairs, and the maximum stack height under
// a ~60 K budget [20].  Also cross-checks Observation 2: the single-pair
// Sec.-II M3D design adds negligible heat.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/multi_tier.hpp"
#include "uld3d/core/thermal.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct ThermalRow {
  std::int64_t y = 0;
  std::int64_t n = 0;
  double total_power_w = 0.0;
  double rise_k = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("obs10_thermal", argc, argv);
  const accel::CaseStudy study;
  const core::AreaModel area = study.area_model();
  const double die_mm2 = area.total_area_um2() / 1.0e6;

  // Per-pair vertical resistance from the PDK tier stack, normalised to the
  // case-study die; sink resistance for a passive heat spreader.
  const auto stack = tech::TierStack::make_m3d_130nm();
  double pair_r_mm2 = 0.0;
  for (const auto& tier : stack.tiers()) pair_r_mm2 += tier.thermal_resistance_mm2_k_per_w;
  const double pair_r = pair_r_mm2 / die_mm2;
  const double sink_r = 1200.0 / die_mm2;  // mm^2*K/W spreader-to-ambient

  const auto rows = h.time("thermal_sweep", [&] {
    std::vector<ThermalRow> out;
    for (std::int64_t y = 1; y <= 12; ++y) {
      ThermalRow row;
      row.y = y;
      row.n = core::multi_tier_parallel_cs(area, y);
      // Each pair dissipates its CS group's power plus its memory tier.
      const double pair_power_w =
          (static_cast<double>(row.n) / static_cast<double>(y) * 4.0 + 2.5) *
          1.0e-3 * 20.0;  // mW-per-MHz scaled to 20 MHz operation, per pair
      core::ThermalStack thermal(sink_r);
      for (std::int64_t j = 0; j < y; ++j) {
        thermal.add_tier({pair_r, pair_power_w});
      }
      row.total_power_w = pair_power_w * static_cast<double>(y);
      row.rise_k = thermal.temperature_rise_k();
      out.push_back(row);
    }
    return out;
  });

  Table table({"Tier pairs Y", "N (CSs)", "Total power (W)", "Temp rise (K)",
               "Within 60 K budget"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.y), std::to_string(row.n),
                   format_double(row.total_power_w, 3),
                   format_double(row.rise_k, 2),
                   row.rise_k <= 60.0 ? "yes" : "NO"});
  }
  emit_table(std::cout, table,
              "Obs. 10 (Eq. 17): temperature rise vs interleaved tier pairs", "obs10_thermal");

  const core::ThermalTier per_tier{pair_r, 8.0 * 4.0 * 20.0 * 1.0e-3 + 0.05};
  const std::int64_t max_pairs =
      core::ThermalStack::max_tier_pairs(sink_r, per_tier, 60.0);
  std::cout << "Max tier pairs within a 60 K budget (paper Obs. 10 bound): "
            << max_pairs << "\n";

  h.value("temp_rise_y1_k", rows.front().rise_k, "kelvin");
  h.value("temp_rise_y12_k", rows.back().rise_k, "kelvin");
  h.value("max_tier_pairs_60k", static_cast<double>(max_pairs), "count");
  return h.finish();
}

// Reproduces Observation 3: if the 2D baseline had used a non-BEOL memory
// that is 2x less dense than RRAM (e.g. SRAM), the common footprint would be
// larger and the M3D design could host ~2x the computing sub-systems,
// raising the EDP benefit — i.e. the paper's RRAM-vs-RRAM comparison is
// conservative.
//
// Paper reference: 8 -> 16 CSs raises ResNet-18 EDP benefit 5.7x -> 6.8x.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct HandicapRow {
  double handicap = 0.0;
  std::int64_t n_cs = 0;
  uld3d::sim::DesignComparison cmp;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("obs3_sram_baseline", argc, argv);
  const nn::Network net = nn::make_resnet18();

  const auto rows = h.time("handicap_sweep", [&] {
    std::vector<HandicapRow> out;
    for (const double handicap : {1.0, 1.5, 2.0}) {
      accel::CaseStudy study;
      study.baseline_mem_density_handicap = handicap;
      out.push_back({handicap, study.m3d_cs_count(), study.run(net)});
    }
    return out;
  });

  Table table({"2D memory density", "M3D CSs", "Speedup", "Energy",
               "EDP benefit"});
  for (const auto& row : rows) {
    const std::string label =
        row.handicap == 1.0
            ? "RRAM (paper baseline)"
            : format_ratio(row.handicap, 1) + " less dense (SRAM-like)";
    table.add_row({label, std::to_string(row.n_cs),
                   format_ratio(row.cmp.speedup),
                   format_ratio(row.cmp.energy_ratio, 3),
                   format_ratio(row.cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Obs. 3: denser-than-2D-memory baselines are conservative "
              "(paper: 8 CSs/5.7x -> 16 CSs/6.8x at 2x less dense)", "obs3_sram_baseline");

  h.value("rram_baseline_edp_benefit", rows.front().cmp.edp_benefit, "ratio");
  h.value("sram_2x_edp_benefit", rows.back().cmp.edp_benefit, "ratio");
  h.value("sram_2x_cs_count", static_cast<double>(rows.back().n_cs), "count");
  return h.finish();
}

// Reproduces Observation 3: if the 2D baseline had used a non-BEOL memory
// that is 2x less dense than RRAM (e.g. SRAM), the common footprint would be
// larger and the M3D design could host ~2x the computing sub-systems,
// raising the EDP benefit — i.e. the paper's RRAM-vs-RRAM comparison is
// conservative.
//
// Paper reference: 8 -> 16 CSs raises ResNet-18 EDP benefit 5.7x -> 6.8x.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;
  const nn::Network net = nn::make_resnet18();

  Table table({"2D memory density", "M3D CSs", "Speedup", "Energy",
               "EDP benefit"});
  for (const double handicap : {1.0, 1.5, 2.0}) {
    accel::CaseStudy study;
    study.baseline_mem_density_handicap = handicap;
    const sim::DesignComparison cmp = study.run(net);
    const std::string label =
        handicap == 1.0 ? "RRAM (paper baseline)"
                        : format_ratio(handicap, 1) + " less dense (SRAM-like)";
    table.add_row({label, std::to_string(study.m3d_cs_count()),
                   format_ratio(cmp.speedup), format_ratio(cmp.energy_ratio, 3),
                   format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Obs. 3: denser-than-2D-memory baselines are conservative "
              "(paper: 8 CSs/5.7x -> 16 CSs/6.8x at 2x less dense)", "obs3_sram_baseline");
  return 0;
}

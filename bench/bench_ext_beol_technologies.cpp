// EXTENSION (paper conclusion point 4): the analytical framework priced
// across candidate BEOL upper-tier device technologies [6-8].  Each
// technology's drive strength maps to a Case-1 width relaxation for its
// memory access FET; the Case-1 machinery then yields the iso-footprint,
// iso-capacity EDP benefit if THAT technology replaced the CNFET tier.
//
// Expected shape: technologies within the paper's 1.6x width-relaxation
// tolerance (Obs. 7) retain the full ~5.4x benefit; low-mobility devices
// (IGZO-class) fall off the Case-1 cliff.
#include <algorithm>
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/relaxed_baseline.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/beol_device.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct DeviceRow {
  uld3d::tech::BeolDeviceTechnology device;
  uld3d::core::RelaxedDesignPoint point;
  uld3d::core::EdpResult total;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("ext_beol_technologies", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const core::Chip2d c2 = study.chip2d_params();
  const core::AreaModel area = study.area_model();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};
  const auto workloads = core::layer_workloads(net, {}, {});

  const auto rows = h.time("technology_sweep", [&] {
    std::vector<DeviceRow> out;
    for (const auto& device : tech::beol_technology_catalogue()) {
      const auto pdk = tech::pdk_with_beol_device(study.pdk, device);
      DeviceRow row;
      row.device = device;
      const double scale =
          pdk.rram_bit_area_m3d_um2() / pdk.rram_bit_area_um2();
      row.point = core::relaxed_design_point(area, scale);
      std::vector<core::EdpResult> rs;
      for (const auto& w : workloads) {
        rs.push_back(core::evaluate_relaxed_edp(w, c2, row.point, bw));
      }
      row.total = core::combine_results(rs);
      out.push_back(std::move(row));
    }
    return out;
  });

  Table table({"Upper-tier technology", "Drive vs Si", "delta (iso-drive)",
               "BEOL (<400C)", "N_2D", "N_3D", "EDP benefit", "Maturity"});
  double best_edp = 0.0;
  double worst_edp = 0.0;
  int beol_compatible_count = 0;
  for (const auto& row : rows) {
    const auto& device = row.device;
    if (device.beol_compatible()) ++beol_compatible_count;
    if (best_edp == 0.0) best_edp = worst_edp = row.total.edp_benefit;
    best_edp = std::max(best_edp, row.total.edp_benefit);
    worst_edp = std::min(worst_edp, row.total.edp_benefit);
    table.add_row({device.name,
                   format_ratio(device.drive_ratio_vs_si, 2),
                   format_ratio(device.width_relaxation_for_iso_drive(), 2),
                   device.beol_compatible() ? "yes" : "NO",
                   std::to_string(row.point.n_2d),
                   std::to_string(row.point.n_3d),
                   format_ratio(row.total.edp_benefit), device.maturity});
  }
  emit_table(std::cout, table,
              "Extension: M3D EDP benefit per candidate BEOL access-FET "
              "technology, ResNet-18 (Case-1 framework)", "ext_beol_technologies");
  std::cout << "Technologies with >= 0.63x Si drive stay inside the paper's "
               "1.6x width-relaxation tolerance (Obs. 7) and keep the full "
               "benefit.\n";

  h.value("best_edp_benefit", best_edp, "ratio");
  h.value("worst_edp_benefit", worst_edp, "ratio");
  h.value("beol_compatible_count", static_cast<double>(beol_compatible_count),
          "count");
  return h.finish();
}

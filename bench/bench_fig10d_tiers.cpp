// Reproduces Fig. 10d / Observation 9 (Case 3): EDP benefit vs. the number
// of interleaved compute+memory tier pairs Y, for workloads with different
// maximum parallel partitions N#.
//
// Paper reference: ResNet-18 benefits go 5.7x -> 6.9x (Y=2) and plateau at
// ~7.1x; a highly parallel single layer (L4.1 CONV) approaches ~23x.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/multi_tier.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct TierRow {
  std::int64_t y = 0;
  std::int64_t n = 0;
  uld3d::core::EdpResult total;
  uld3d::core::EdpResult single;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig10d_tiers", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const core::Chip2d c2 = study.chip2d_params();
  const core::AreaModel area = study.area_model();
  const double per_cs_bw = c2.bandwidth_bits_per_cycle;

  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  // The highly-parallelizable single layer the paper quotes: the last
  // stage-4 convolution (K = 512 -> N# = 32 at a 16-wide array).
  core::WorkloadPoint l41;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.layer(i).name() == "L4.1 CONV2") l41 = workloads[i];
  }

  const auto rows = h.time("tier_sweep", [&] {
    std::vector<TierRow> out;
    for (std::int64_t y = 1; y <= 6; ++y) {
      TierRow row;
      row.y = y;
      row.n = core::multi_tier_parallel_cs(area, y);
      std::vector<core::EdpResult> layer_results;
      for (const auto& w : workloads) {
        layer_results.push_back(
            core::evaluate_multi_tier_edp(w, c2, area, y, per_cs_bw));
      }
      row.total = core::combine_results(layer_results);
      row.single = core::evaluate_multi_tier_edp(l41, c2, area, y, per_cs_bw);
      out.push_back(row);
    }
    return out;
  });

  Table table({"Tier pairs Y", "N (CSs)", "ResNet-18 EDP benefit",
               "L4.1 CONV EDP benefit"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.y), std::to_string(row.n),
                   format_ratio(row.total.edp_benefit),
                   format_ratio(row.single.edp_benefit)});
    h.value("resnet18_edp_benefit_y" + std::to_string(row.y),
            row.total.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
              "Fig. 10d: EDP benefit vs interleaved M3D tier pairs "
              "(paper: 5.7x -> 6.9x -> plateau ~7.1x; L4.1 CONV -> ~23x)", "fig10d_tiers");

  h.value("l41_conv_edp_benefit_y6", rows.back().single.edp_benefit, "ratio");
  return h.finish();
}

// Reproduces Table I: per-layer speedup / energy / EDP benefit of the
// iso-footprint, iso-on-chip-memory-capacity M3D accelerator on ResNet-18.
//
// Paper reference values: per-layer speedups 2.5x-7.9x, totals
// 5.64x speedup / 0.99x energy / 5.66x EDP.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("table1_resnet18", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  sim::DesignComparison cmp =
      h.time("case_study_run", [&] { return study.run(net); });
  // Table I reports CONV1 and the max-pool as one row.
  sim::merge_rows(cmp, "CONV1", "POOL1", "CONV1+POOL");

  Table table({"Layer", "Speedup", "Energy", "EDP benefit"});
  for (const auto& row : cmp.layers) {
    // Table I lists convolution rows (the residual adds and final pooling
    // execute on the shared vector unit and are folded into the totals).
    if (row.name.find("ADD") != std::string::npos ||
        row.name == "AVGPOOL" || row.name == "FC") {
      continue;
    }
    table.add_row({row.name, format_ratio(row.speedup),
                   format_ratio(row.energy_ratio), format_ratio(row.edp_benefit)});
  }
  table.add_row({"Total", format_ratio(cmp.speedup),
                 format_ratio(cmp.energy_ratio), format_ratio(cmp.edp_benefit)});
  emit_table(std::cout, table,
              "Table I: iso-footprint, iso-capacity M3D benefits, ResNet-18 "
              "(paper total: 5.64x / 0.99x / 5.66x)", "table1_resnet18");
  std::cout << "M3D parallel CSs (Eq. 2): " << study.m3d_cs_count()
            << "  (paper: 8)\n";

  h.value("total_speedup", cmp.speedup, "ratio");
  h.value("total_energy_ratio", cmp.energy_ratio, "ratio");
  h.value("total_edp_benefit", cmp.edp_benefit, "ratio");
  h.value("m3d_cs_count", static_cast<double>(study.m3d_cs_count()), "count");
  return h.finish();
}

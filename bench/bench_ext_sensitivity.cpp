// EXTENSION: one-at-a-time sensitivity of the M3D EDP benefit to the
// technology/architecture parameters, around the Sec.-II design point.
// Ranks which knobs (gamma_cells, bandwidth, access energy, peak compute,
// idle power) dominate — the quantitative version of the paper's
// observations 5-8.
#include <cmath>
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/dse/sensitivity.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("ext_sensitivity", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const auto workloads = core::layer_workloads(net, {}, {});
  const core::Chip2d base2d = study.chip2d_params();
  const core::AreaModel base_area = study.area_model();

  const std::vector<std::string> names = {
      "gamma_cells",       "per_cs_bandwidth", "alpha_pj_per_bit",
      "peak_ops_per_cycle", "mem_idle_pj",      "cs_idle_pj"};
  const std::vector<double> baseline = {
      base_area.gamma_cells(),      base2d.bandwidth_bits_per_cycle,
      base2d.alpha_pj_per_bit,      base2d.peak_ops_per_cycle,
      base2d.mem_idle_pj_per_cycle, base2d.cs_idle_pj_per_cycle};

  const auto objective = [&](const std::vector<double>& p) {
    core::AreaModel area = base_area;
    area.mem_cells_area_um2 = p[0] * area.cs_area_um2;  // gamma_cells
    core::Chip2d c2 = base2d;
    c2.bandwidth_bits_per_cycle = p[1];
    c2.alpha_pj_per_bit = p[2];
    c2.peak_ops_per_cycle = p[3];
    c2.mem_idle_pj_per_cycle = p[4];
    c2.cs_idle_pj_per_cycle = p[5];
    const std::int64_t n = area.m3d_parallel_cs();
    core::Chip3d c3;
    c3.parallel_cs = n;
    c3.bandwidth_bits_per_cycle = p[1] * static_cast<double>(n);
    c3.alpha_pj_per_bit = p[2] * 0.97;
    c3.mem_idle_pj_per_cycle = p[4] * (1.0 + 0.3 * static_cast<double>(n - 1));
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) rs.push_back(core::evaluate_edp(w, c2, c3));
    return core::combine_results(rs).edp_benefit;
  };

  const auto results = h.time("analyze_sensitivity", [&] {
    return dse::analyze_sensitivity(names, baseline, objective);
  });
  dse::sensitivity_table(results)
      .print(std::cout,
             "Sensitivity of ResNet-18 M3D EDP benefit around the Sec.-II "
             "point (elasticity = % change per % parameter change)");
  std::cout << "gamma_cells moves in floor() steps (Eq. 2), so its local "
               "elasticity is zero between integer N boundaries and large "
               "at them — exactly the paper's capacity staircase (Fig. 9).\n";

  double max_abs_elasticity = 0.0;
  for (const auto& s : results) {
    if (!s.ok() || !std::isfinite(s.elasticity)) continue;
    max_abs_elasticity =
        std::max(max_abs_elasticity, std::abs(s.elasticity));
    h.value("elasticity_" + s.parameter, s.elasticity, "pct_per_pct");
  }
  h.value("max_abs_elasticity", max_abs_elasticity, "pct_per_pct");
  return h.finish();
}

// Reproduces Fig. 10b/10c / Observation 7 (Case 1): EDP benefit vs. relaxed
// M3D memory-access-FET width delta.  A wider BEOL FET grows the M3D cell
// array; iso-footprint/iso-capacity then forces BOTH chips to grow, and the
// larger 2D baseline is re-optimized with extra parallel CSs (Eq. 9).
//
// Paper reference: no loss of EDP benefit up to delta = 1.6x; small benefits
// retained even at 2.5x.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/relaxed_baseline.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct DeltaRow {
  double delta = 0.0;
  double scale = 0.0;
  uld3d::core::RelaxedDesignPoint point;
  uld3d::core::EdpResult total;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig10c_fet_width", argc, argv);
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const core::Chip2d c2 = study.chip2d_params();
  const core::AreaModel area = study.area_model();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};

  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  const auto rows = h.time("width_sweep", [&] {
    std::vector<DeltaRow> out;
    for (const double delta :
         {1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.5, 3.0}) {
      const auto relaxed_pdk = study.pdk.with_fet_width_relaxation(delta);
      DeltaRow row;
      row.delta = delta;
      row.scale =
          relaxed_pdk.rram_bit_area_m3d_um2() / study.pdk.rram_bit_area_um2();
      row.point = core::relaxed_design_point(area, row.scale);
      std::vector<core::EdpResult> layer_results;
      for (const auto& w : workloads) {
        layer_results.push_back(core::evaluate_relaxed_edp(w, c2, row.point, bw));
      }
      row.total = core::combine_results(layer_results);
      out.push_back(row);
    }
    return out;
  });

  Table table({"delta (FET width)", "M3D cell area scale", "N_2D (Eq. 9)",
               "N_3D", "Speedup", "EDP benefit"});
  for (const auto& row : rows) {
    table.add_row({format_ratio(row.delta, 1), format_ratio(row.scale, 2),
                   std::to_string(row.point.n_2d),
                   std::to_string(row.point.n_3d),
                   format_ratio(row.total.speedup),
                   format_ratio(row.total.edp_benefit)});
    h.value("edp_benefit_delta_" + format_double(row.delta, 1),
            row.total.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
              "Fig. 10c: EDP benefit vs relaxed M3D FET width, ResNet-18 "
              "(paper: flat to 1.6x, small benefit retained at 2.5x)", "fig10c_fet_width");
  return h.finish();
}

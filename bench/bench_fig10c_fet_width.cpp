// Reproduces Fig. 10b/10c / Observation 7 (Case 1): EDP benefit vs. relaxed
// M3D memory-access-FET width delta.  A wider BEOL FET grows the M3D cell
// array; iso-footprint/iso-capacity then forces BOTH chips to grow, and the
// larger 2D baseline is re-optimized with extra parallel CSs (Eq. 9).
//
// Paper reference: no loss of EDP benefit up to delta = 1.6x; small benefits
// retained even at 2.5x.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/relaxed_baseline.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;
  const accel::CaseStudy study;
  const nn::Network net = nn::make_resnet18();
  const core::Chip2d c2 = study.chip2d_params();
  const core::AreaModel area = study.area_model();
  const core::RelaxedBandwidth bw{c2.bandwidth_bits_per_cycle};

  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  Table table({"delta (FET width)", "M3D cell area scale", "N_2D (Eq. 9)",
               "N_3D", "Speedup", "EDP benefit"});
  for (const double delta :
       {1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.5, 3.0}) {
    const auto relaxed_pdk = study.pdk.with_fet_width_relaxation(delta);
    const double scale =
        relaxed_pdk.rram_bit_area_m3d_um2() / study.pdk.rram_bit_area_um2();
    const core::RelaxedDesignPoint point =
        core::relaxed_design_point(area, scale);
    std::vector<core::EdpResult> layer_results;
    for (const auto& w : workloads) {
      layer_results.push_back(core::evaluate_relaxed_edp(w, c2, point, bw));
    }
    const core::EdpResult total = core::combine_results(layer_results);
    table.add_row({format_ratio(delta, 1), format_ratio(scale, 2),
                   std::to_string(point.n_2d), std::to_string(point.n_3d),
                   format_ratio(total.speedup), format_ratio(total.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Fig. 10c: EDP benefit vs relaxed M3D FET width, ResNet-18 "
              "(paper: flat to 1.6x, small benefit retained at 2.5x)", "fig10c_fet_width");
  return 0;
}

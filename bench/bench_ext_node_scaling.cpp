// EXTENSION (paper conclusion point 2): project the case study to newer
// technology nodes with first-order scaling and re-run the comparison.
// Area ratios — hence Eq. 2's N — are node-invariant, so the iso-footprint
// EDP benefit persists while absolute energy and latency improve.
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/node_scaling.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"

namespace {

struct NodeRow {
  double node_nm = 0.0;
  double clock_mhz = 0.0;
  double gamma_cells = 0.0;
  std::int64_t n_cs = 0;
  double footprint_mm2 = 0.0;
  uld3d::sim::DesignComparison cmp;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("ext_node_scaling", argc, argv);
  const nn::Network net = nn::make_resnet18();

  const auto rows = h.time("node_sweep", [&] {
    std::vector<NodeRow> out;
    for (const double node_nm : {130.0, 65.0, 28.0, 14.0, 7.0}) {
      accel::CaseStudy study;
      study.pdk = tech::scale_pdk_to_node(study.pdk, node_nm);
      // The CS logic shrinks through the node-scaled library; the SRAM
      // bitcell constant scales explicitly (it is not a library cell).
      const double area_scale = (node_nm / 130.0) * (node_nm / 130.0);
      study.cs.sram_bit_area_um2 *= area_scale;
      const auto area = study.area_model();
      out.push_back({node_nm, study.pdk.node().target_frequency_mhz,
                     area.gamma_cells(), study.m3d_cs_count(),
                     area.total_area_um2() / 1.0e6, study.run(net)});
    }
    return out;
  });

  Table table({"Node", "Clock (MHz)", "gamma_cells", "N", "Footprint mm2",
               "Speedup", "EDP benefit"});
  for (const auto& row : rows) {
    table.add_row({format_double(row.node_nm, 0) + " nm",
                   format_double(row.clock_mhz, 0),
                   format_double(row.gamma_cells, 2),
                   std::to_string(row.n_cs),
                   format_double(row.footprint_mm2, 1),
                   format_ratio(row.cmp.speedup),
                   format_ratio(row.cmp.edp_benefit)});
    h.value("edp_benefit_" + format_double(row.node_nm, 0) + "nm",
            row.cmp.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
             "Extension: node-scaling projection of the Sec.-II case study "
             "(gamma and N are node-invariant; clocks/energies improve)",
             "ext_node_scaling");
  return h.finish();
}

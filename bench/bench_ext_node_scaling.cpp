// EXTENSION (paper conclusion point 2): project the case study to newer
// technology nodes with first-order scaling and re-run the comparison.
// Area ratios — hence Eq. 2's N — are node-invariant, so the iso-footprint
// EDP benefit persists while absolute energy and latency improve.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/node_scaling.hpp"
#include "uld3d/util/export.hpp"

int main() {
  using namespace uld3d;
  const nn::Network net = nn::make_resnet18();

  Table table({"Node", "Clock (MHz)", "gamma_cells", "N", "Footprint mm2",
               "Speedup", "EDP benefit"});
  for (const double node_nm : {130.0, 65.0, 28.0, 14.0, 7.0}) {
    accel::CaseStudy study;
    study.pdk = tech::scale_pdk_to_node(study.pdk, node_nm);
    // The CS logic shrinks through the node-scaled library; the SRAM
    // bitcell constant scales explicitly (it is not a library cell).
    const double area_scale = (node_nm / 130.0) * (node_nm / 130.0);
    study.cs.sram_bit_area_um2 *= area_scale;
    const auto area = study.area_model();
    const auto cmp = study.run(net);
    table.add_row({format_double(node_nm, 0) + " nm",
                   format_double(study.pdk.node().target_frequency_mhz, 0),
                   format_double(area.gamma_cells(), 2),
                   std::to_string(study.m3d_cs_count()),
                   format_double(area.total_area_um2() / 1.0e6, 1),
                   format_ratio(cmp.speedup), format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
             "Extension: node-scaling projection of the Sec.-II case study "
             "(gamma and N are node-invariant; clocks/energies improve)",
             "ext_node_scaling");
  return 0;
}

// Reproduces Fig. 9 / Observation 6: M3D EDP benefit vs. baseline on-chip
// RRAM capacity for ResNet-18 (the DNN compute is unchanged; the model fits
// in every capacity point).
//
// Paper reference: benefits grow from ~1x at 12 MB to ~6.8x at 128 MB
// (5.7x at the 64 MB case-study point).
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

int main() {
  using namespace uld3d;
  const nn::Network net = nn::make_resnet18();

  Table table({"RRAM capacity", "gamma_cells", "M3D CSs (Eq. 2)", "Speedup",
               "Energy", "EDP benefit"});
  for (const double mb : {12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0}) {
    accel::CaseStudy study;
    study.rram_capacity_mb = mb;
    const auto area = study.area_model();
    const sim::DesignComparison cmp = study.run(net);
    table.add_row({format_double(mb, 0) + " MB",
                   format_double(area.gamma_cells(), 2),
                   std::to_string(study.m3d_cs_count()),
                   format_ratio(cmp.speedup), format_ratio(cmp.energy_ratio, 3),
                   format_ratio(cmp.edp_benefit)});
  }
  emit_table(std::cout, table,
              "Fig. 9: RRAM capacity vs M3D benefit, ResNet-18 "
              "(paper: ~1x @ 12 MB rising to ~6.8x @ 128 MB)", "fig9_capacity");
  return 0;
}

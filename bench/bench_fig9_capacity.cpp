// Reproduces Fig. 9 / Observation 6: M3D EDP benefit vs. baseline on-chip
// RRAM capacity for ResNet-18 (the DNN compute is unchanged; the model fits
// in every capacity point).
//
// Paper reference: benefits grow from ~1x at 12 MB to ~6.8x at 128 MB
// (5.7x at the 64 MB case-study point).
#include <iostream>
#include <vector>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/table.hpp"

namespace {

struct CapacityRow {
  double mb = 0.0;
  double gamma_cells = 0.0;
  std::int64_t n_cs = 0;
  uld3d::sim::DesignComparison cmp;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig9_capacity", argc, argv);
  const nn::Network net = nn::make_resnet18();

  const auto rows = h.time("capacity_sweep", [&] {
    std::vector<CapacityRow> out;
    for (const double mb : {12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0}) {
      accel::CaseStudy study;
      study.rram_capacity_mb = mb;
      const auto area = study.area_model();
      out.push_back({mb, area.gamma_cells(), study.m3d_cs_count(),
                     study.run(net)});
    }
    return out;
  });

  Table table({"RRAM capacity", "gamma_cells", "M3D CSs (Eq. 2)", "Speedup",
               "Energy", "EDP benefit"});
  for (const auto& row : rows) {
    table.add_row({format_double(row.mb, 0) + " MB",
                   format_double(row.gamma_cells, 2),
                   std::to_string(row.n_cs),
                   format_ratio(row.cmp.speedup),
                   format_ratio(row.cmp.energy_ratio, 3),
                   format_ratio(row.cmp.edp_benefit)});
    h.value("edp_benefit_" + format_double(row.mb, 0) + "mb",
            row.cmp.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
              "Fig. 9: RRAM capacity vs M3D benefit, ResNet-18 "
              "(paper: ~1x @ 12 MB rising to ~6.8x @ 128 MB)", "fig9_capacity");
  return h.finish();
}

// Reproduces Fig. 7: energy & delay benefits of iso-footprint M3D for the
// six Table-II accelerator architectures on AlexNet, evaluated both by the
// ZigZag-style mapper ("ZZ") and by the paper's analytical framework.
//
// Paper reference: EDP benefits 5.3x-11.5x; analytical within 10% of ZigZag.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <iostream>
#include <vector>

#include "uld3d/core/edp_model.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/math.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/table.hpp"

namespace {

/// Analytical Sec.-III evaluation of one Table-II architecture, mirroring
/// the design point the mapper prices (same N, bandwidth, energies).
uld3d::core::EdpResult analytical_benefit(const uld3d::nn::Network& net,
                                          const uld3d::mapper::Architecture& arch,
                                          const uld3d::mapper::SystemCosts& sys,
                                          std::int64_t n_cs) {
  using namespace uld3d;
  core::Chip2d c2;
  c2.bandwidth_bits_per_cycle = arch.rram_bandwidth_bits_per_cycle;
  c2.peak_ops_per_cycle = 2.0 * static_cast<double>(arch.spatial.total_pes());
  c2.alpha_pj_per_bit = arch.rram_read_pj_per_bit;
  c2.compute_pj_per_op = arch.mac_energy_pj / 2.0;
  c2.cs_idle_pj_per_cycle = sys.cs_idle_pj_per_cycle;
  c2.mem_idle_pj_per_cycle = sys.mem_idle_pj_per_cycle;

  core::Chip3d c3;
  c3.parallel_cs = n_cs;
  c3.bandwidth_bits_per_cycle =
      c2.bandwidth_bits_per_cycle * static_cast<double>(n_cs);
  c3.alpha_pj_per_bit = c2.alpha_pj_per_bit * sys.m3d_access_energy_scale;
  c3.mem_idle_pj_per_cycle =
      c2.mem_idle_pj_per_cycle *
      (1.0 + sys.extra_bank_idle_fraction * static_cast<double>(n_cs - 1));

  core::TrafficOptions traffic;
  core::PartitionOptions part;
  part.array_cols = arch.spatial.k;
  part.array_rows = arch.spatial.c;
  part.spatial_ox = arch.spatial.ox;
  part.spatial_oy = arch.spatial.oy;
  part.channel_tap_packing = false;
  part.hybrid_pixel_partition = true;  // the mapper explores hybrid splits

  std::vector<core::EdpResult> per_layer;
  for (const auto& w : core::layer_workloads(net, traffic, part)) {
    per_layer.push_back(core::evaluate_edp(w, c2, c3));
  }
  return core::combine_results(per_layer);
}

struct ArchRow {
  std::string name;
  uld3d::mapper::DesignPointBenefit zz;
  uld3d::core::EdpResult model;
  double diff = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("fig7_architectures", argc, argv);
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const nn::Network net = nn::make_alexnet();
  const mapper::SystemCosts sys;

  // Per-architecture fan-out into pre-sized slots: the rows are
  // bit-identical at any jobs count, so the jobs=1 section keeps its
  // baseline meaning while the jobs=4 section measures the speedup.  The
  // mapping cache is off while timing — cross-iteration hits would fake
  // the parallel time.
  const auto archs = mapper::table2_architectures();
  const auto evaluate_all = [&](int jobs) {
    std::vector<ArchRow> out(archs.size());
    parallel::parallel_for_indexed(
        archs.size(),
        [&](std::size_t i) {
          ArchRow row;
          row.name = archs[i].name;
          row.zz = mapper::evaluate_benefit(net, archs[i], sys, pdk);
          row.model = analytical_benefit(net, archs[i], sys, row.zz.n_cs);
          row.diff =
              relative_difference(row.model.edp_benefit, row.zz.edp_benefit);
          out[i] = std::move(row);
        },
        {.jobs = jobs});
    return out;
  };
  mapper::MapCache& cache = mapper::MapCache::instance();
  cache.set_enabled(false);
  const auto rows =
      h.time("evaluate_architectures", [&] { return evaluate_all(1); });
  (void)h.time("evaluate_architectures_jobs4",
               [&] { return evaluate_all(4); });
  cache.set_enabled(true);

  Table table({"Architecture", "N", "ZZ speedup", "ZZ energy", "ZZ EDP",
               "Model speedup", "Model EDP", "|diff|"});
  double worst_diff = 0.0;
  for (const auto& row : rows) {
    worst_diff = std::max(worst_diff, row.diff);
    table.add_row({row.name, std::to_string(row.zz.n_cs),
                   format_ratio(row.zz.speedup),
                   format_ratio(row.zz.energy_ratio, 3),
                   format_ratio(row.zz.edp_benefit),
                   format_ratio(row.model.speedup),
                   format_ratio(row.model.edp_benefit),
                   format_double(row.diff * 100.0, 1) + "%"});
    std::string slug = row.name;
    std::transform(slug.begin(), slug.end(), slug.begin(),
                   [](unsigned char c) {
                     return std::isalnum(c) ? std::tolower(c) : '_';
                   });
    h.value(slug + "_zz_edp_benefit", row.zz.edp_benefit, "ratio");
  }
  emit_table(std::cout, table,
              "Fig. 7: Table-II architectures on AlexNet, ZigZag-style mapper "
              "vs analytical model (paper: 5.3x-11.5x EDP, <=10% apart)", "fig7_architectures");
  std::cout << "Worst model-vs-mapper difference: "
            << format_double(worst_diff * 100.0, 1) << "% (paper: <10%)\n";

  h.value("worst_model_vs_mapper_diff", worst_diff, "fraction");

  // --- mapping-cache hit rate (fidelity): the 6-arch workload twice over a
  //     cold cache, serial so the hit/miss sequence is reproducible.  The
  //     first pass seeds, the second is answered from the cache. ---
  cache.clear();
  cache.reset_counters();
  parallel::set_jobs(1);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& arch : archs) {
      (void)mapper::evaluate_benefit(net, arch, sys, pdk);
    }
  }
  const double lookups = static_cast<double>(cache.hits() + cache.misses());
  h.value("mapcache_two_pass_hit_rate",
          lookups > 0.0 ? static_cast<double>(cache.hits()) / lookups : 0.0,
          "fraction");
  parallel::set_jobs(0);

  // Advisory speedup of the architecture fan-out at 4 jobs (≈1x on a
  // single-core host; see EXPERIMENTS.md) plus its lower-is-better mirror,
  // which matches the one-sided direction of the timing gate.
  const double t1 = h.stats("evaluate_architectures").median_s;
  const double t4 = h.stats("evaluate_architectures_jobs4").median_s;
  if (t1 > 0.0 && t4 > 0.0) {
    h.timing_value("parallel_arch_speedup_jobs4", t1 / t4, "ratio");
    h.timing_value("parallel_arch_time_ratio_jobs4", t4 / t1, "ratio");
  }
  return h.finish();
}

// PERF: cross-run computation reuse (DESIGN.md §17).  A fig7-style
// capacity x CS-count sweep priced through the temporal mapper, run in
// three configurations:
//
//   no-reuse   dedup and pruning disabled, no store — the exact pre-reuse
//              behavior (every alias re-searched, every candidate priced).
//   first run  full reuse stack against an EMPTY store (dedup collapses the
//              evaluator-blind "budget" axis, pruning skips dominated
//              candidates, and the run persists its map cache on exit).
//   re-run     full reuse stack against the store the first run wrote:
//              every pricing is answered from the file.
//
// The reuse layer is a pure optimization, so all three configurations must
// produce BIT-identical rows — that identity, the re-run's miss count (0)
// and file-hit fraction (1), and the fidelity checksum are the hard gates.
// Timing values (advisory, host-dependent): the three medians, the
// headline reuse speedup (no-reuse vs warm re-run), and the warm-vs-first
// ratio isolating the persistent store's own contribution.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "uld3d/dse/sweep.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/map_cache_file.hpp"
#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/tech/pdk.hpp"
#include "uld3d/util/bench.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/status.hpp"

namespace {

uld3d::nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                         std::int64_t fx, const char* name) {
  uld3d::nn::ConvSpec s;
  s.name = name;
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = 1;
  return s;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool rows_bit_identical(const std::vector<uld3d::dse::SweepRow>& a,
                        const std::vector<uld3d::dse::SweepRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].grid_index != b[i].grid_index) return false;
    if (a[i].ok() != b[i].ok()) return false;
    if (a[i].metrics.size() != b[i].metrics.size()) return false;
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      if (!bits_equal(a[i].metrics[m], b[i].metrics[m])) return false;
    }
  }
  return true;
}

/// Fidelity checksum: the sum of every finite metric value (failed rows
/// carry NaN metrics, which must not poison the gate).
double metric_checksum(const std::vector<uld3d::dse::SweepRow>& rows) {
  double sum = 0.0;
  for (const auto& row : rows) {
    if (!row.ok()) continue;
    for (const double v : row.metrics) {
      if (std::isfinite(v)) sum += v;
    }
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uld3d;
  bench::Harness h("sweep_reuse", argc, argv);
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const mapper::SystemCosts sys;
  mapper::MapCache& cache = mapper::MapCache::instance();
  cache.set_enabled(true);

  // The fig7 grid (capacity x CS count) crossed with an evaluator-BLIND
  // thermal-budget axis, as in the paper's budget studies (fig9/10 sweep
  // 2..20 W in 2 W steps): 200 points, 20 unique mappings, 10 aliases
  // each.  Dedup collapses the blind axis; the no-reuse baseline pays for
  // every alias.
  dse::Grid grid;
  grid.axis("capacity_mb", {8.0, 16.0, 32.0, 64.0, 128.0})
      .axis("n_cs", {1.0, 2.0, 4.0, 16.0})
      .axis("budget_w",
            {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0});

  // Mapper-heavy pricing: a full spatial search (hundreds of temporal-mapper
  // pricings, every one a MapCache entry) over two contrasting layer shapes.
  const nn::ConvSpec conv1 = conv(96, 3, 55, 11, "conv1");
  const nn::ConvSpec conv_mid = conv(256, 96, 27, 5, "conv_mid");
  const auto evaluate = [&](const std::vector<double>& p) {
    mapper::Architecture arch = mapper::make_table2_architecture(1);
    arch.rram_capacity_bits = p[0] * 8.0 * 1024.0 * 1024.0;
    const auto n = static_cast<std::int64_t>(p[1]);
    const std::int64_t n_geom = mapper::m3d_parallel_cs(arch, pdk);
    if (n > n_geom) {
      throw StatusError(
          Failure(ErrorCode::kInfeasiblePoint, "CS count does not fit")
              .with("n_cs", n)
              .with("n_geom", n_geom));
    }
    const mapper::SpatialSearchResult r1 =
        mapper::search_spatial(conv1, arch, sys, n);
    const mapper::SpatialSearchResult r2 =
        mapper::search_spatial(conv_mid, arch, sys, n);
    return std::vector<double>{
        (r1.cost.latency_cycles * r1.cost.energy_pj +
         r2.cost.latency_cycles * r2.cost.energy_pj) /
            1.0e12,
        r1.improvement() * r2.improvement()};
  };
  // Canonical key over exactly the inputs the evaluator reads (not budget_w).
  const auto point_key = [](const std::vector<double>& p) {
    char buffer[80];
    std::snprintf(buffer, sizeof buffer, "%.17g,%.17g", p[0], p[1]);
    return std::string(buffer);
  };
  const std::vector<std::string> metrics{"searched_edp", "mapping_gain"};
  dse::SweepOptions options;
  options.point_key = point_key;

  const char* bench_dir = std::getenv("ULD3D_BENCH_DIR");
  const std::string store =
      (bench_dir != nullptr && *bench_dir != '\0' ? std::string(bench_dir)
                                                  : std::string(".")) +
      "/mapcache_sweep_reuse.bin";

  // --- no-reuse baseline: the pre-reuse code path ---------------------------
  // Dedup and pruning off, no store.  (The in-memory MapCache stays on: it
  // predates the reuse layer, so the baseline keeps it.)
  const dse::SweepResult baseline = h.time("baseline_sweep", [&] {
    dse::set_sweep_dedup_enabled(false);
    mapper::set_spatial_prune_enabled(false);
    cache.clear();
    dse::SweepResult r = run_sweep(grid, metrics, evaluate, options);
    dse::set_sweep_dedup_enabled(true);
    mapper::set_spatial_prune_enabled(true);
    return r;
  });

  // --- first run: full reuse stack, empty store; save rebuilds the file ----
  const dse::SweepResult cold = h.time("cold_sweep", [&] {
    std::remove(store.c_str());
    cache.clear();
    dse::SweepResult r = run_sweep(grid, metrics, evaluate, options);
    (void)mapper::save_map_cache_file(store);
    return r;
  });

  // --- re-run: empty in-memory cache, every pricing answered from the file -
  const dse::SweepResult warm = h.time("warm_sweep", [&] {
    cache.clear();
    (void)mapper::load_map_cache_file(store);
    return run_sweep(grid, metrics, evaluate, options);
  });

  // --- one counted warm re-run for the reuse counters ----------------------
  cache.clear();
  cache.reset_counters();
  (void)mapper::load_map_cache_file(store);
  (void)run_sweep(grid, metrics, evaluate, options);
  const double lookups = static_cast<double>(cache.hits() + cache.misses());
  const double warm_misses = static_cast<double>(cache.misses());
  const double file_hits = static_cast<double>(cache.file_hits());
  std::remove(store.c_str());

  const double t_base = h.stats("baseline_sweep").median_s;
  const double t_cold = h.stats("cold_sweep").median_s;
  const double t_warm = h.stats("warm_sweep").median_s;

  Table table({"Run", "Median (ms)", "Speedup"});
  table.add_row(
      {"no reuse (dedup/prune off)", format_double(t_base * 1e3, 2), "1.0"});
  table.add_row({"first run (builds store)", format_double(t_cold * 1e3, 2),
                 t_cold > 0.0 ? format_ratio(t_base / t_cold) : "-"});
  table.add_row({"re-run (warm store)", format_double(t_warm * 1e3, 2),
                 t_warm > 0.0 ? format_ratio(t_base / t_warm) : "-"});
  emit_table(std::cout, table,
             "Cross-run reuse: fig7-style mapper sweep without the reuse "
             "layer, with it (cold store), and re-run against the warm "
             "store (rows bit-identical in all three)",
             "sweep_reuse");

  // Hard gates: reuse must never change a value.
  h.value("rows_bit_identical_warm",
          rows_bit_identical(cold.rows(), warm.rows()) ? 1.0 : 0.0, "flag");
  h.value("rows_bit_identical_reuse_off",
          rows_bit_identical(cold.rows(), baseline.rows()) ? 1.0 : 0.0,
          "flag");
  h.value("warm_misses", warm_misses, "count");
  h.value("warm_file_hit_fraction", lookups > 0.0 ? file_hits / lookups : 0.0,
          "fraction");
  h.value("metric_checksum", metric_checksum(cold.rows()), "sum");
  h.value("ok_points", static_cast<double>(cold.ok_count()), "count");

  // Advisory timing: the acceptance target is a >= 5x warm re-run on a
  // fig7-scale grid; warm_vs_cold isolates the persistent store alone.
  if (t_base > 0.0 && t_cold > 0.0 && t_warm > 0.0) {
    h.timing_value("reuse_speedup_warm", t_base / t_warm, "ratio");
    h.timing_value("reuse_speedup_first_run", t_base / t_cold, "ratio");
    h.timing_value("warm_vs_cold_speedup", t_cold / t_warm, "ratio");
    h.timing_value("warm_time_ratio", t_warm / t_base, "ratio");
  }
  return h.finish();
}

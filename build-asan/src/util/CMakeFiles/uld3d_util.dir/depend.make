# Empty dependencies file for uld3d_util.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/export.cpp" "src/util/CMakeFiles/uld3d_util.dir/export.cpp.o" "gcc" "src/util/CMakeFiles/uld3d_util.dir/export.cpp.o.d"
  "/root/repo/src/util/fault.cpp" "src/util/CMakeFiles/uld3d_util.dir/fault.cpp.o" "gcc" "src/util/CMakeFiles/uld3d_util.dir/fault.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/uld3d_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/uld3d_util.dir/log.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/uld3d_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/uld3d_util.dir/status.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/uld3d_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/uld3d_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

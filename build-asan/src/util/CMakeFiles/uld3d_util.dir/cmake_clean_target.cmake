file(REMOVE_RECURSE
  "libuld3d_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_util.dir/export.cpp.o"
  "CMakeFiles/uld3d_util.dir/export.cpp.o.d"
  "CMakeFiles/uld3d_util.dir/fault.cpp.o"
  "CMakeFiles/uld3d_util.dir/fault.cpp.o.d"
  "CMakeFiles/uld3d_util.dir/log.cpp.o"
  "CMakeFiles/uld3d_util.dir/log.cpp.o.d"
  "CMakeFiles/uld3d_util.dir/status.cpp.o"
  "CMakeFiles/uld3d_util.dir/status.cpp.o.d"
  "CMakeFiles/uld3d_util.dir/table.cpp.o"
  "CMakeFiles/uld3d_util.dir/table.cpp.o.d"
  "libuld3d_util.a"
  "libuld3d_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

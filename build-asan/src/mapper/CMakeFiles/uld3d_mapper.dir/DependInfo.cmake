
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/architecture.cpp" "src/mapper/CMakeFiles/uld3d_mapper.dir/architecture.cpp.o" "gcc" "src/mapper/CMakeFiles/uld3d_mapper.dir/architecture.cpp.o.d"
  "/root/repo/src/mapper/cost_model.cpp" "src/mapper/CMakeFiles/uld3d_mapper.dir/cost_model.cpp.o" "gcc" "src/mapper/CMakeFiles/uld3d_mapper.dir/cost_model.cpp.o.d"
  "/root/repo/src/mapper/spatial_search.cpp" "src/mapper/CMakeFiles/uld3d_mapper.dir/spatial_search.cpp.o" "gcc" "src/mapper/CMakeFiles/uld3d_mapper.dir/spatial_search.cpp.o.d"
  "/root/repo/src/mapper/table2.cpp" "src/mapper/CMakeFiles/uld3d_mapper.dir/table2.cpp.o" "gcc" "src/mapper/CMakeFiles/uld3d_mapper.dir/table2.cpp.o.d"
  "/root/repo/src/mapper/temporal_mapping.cpp" "src/mapper/CMakeFiles/uld3d_mapper.dir/temporal_mapping.cpp.o" "gcc" "src/mapper/CMakeFiles/uld3d_mapper.dir/temporal_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/uld3d_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tech/CMakeFiles/uld3d_tech.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/uld3d_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

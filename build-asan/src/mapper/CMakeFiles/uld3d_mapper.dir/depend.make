# Empty dependencies file for uld3d_mapper.
# This may be replaced when dependencies are built.

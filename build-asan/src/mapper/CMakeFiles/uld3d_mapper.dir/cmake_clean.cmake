file(REMOVE_RECURSE
  "CMakeFiles/uld3d_mapper.dir/architecture.cpp.o"
  "CMakeFiles/uld3d_mapper.dir/architecture.cpp.o.d"
  "CMakeFiles/uld3d_mapper.dir/cost_model.cpp.o"
  "CMakeFiles/uld3d_mapper.dir/cost_model.cpp.o.d"
  "CMakeFiles/uld3d_mapper.dir/spatial_search.cpp.o"
  "CMakeFiles/uld3d_mapper.dir/spatial_search.cpp.o.d"
  "CMakeFiles/uld3d_mapper.dir/table2.cpp.o"
  "CMakeFiles/uld3d_mapper.dir/table2.cpp.o.d"
  "CMakeFiles/uld3d_mapper.dir/temporal_mapping.cpp.o"
  "CMakeFiles/uld3d_mapper.dir/temporal_mapping.cpp.o.d"
  "libuld3d_mapper.a"
  "libuld3d_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libuld3d_mapper.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_phys.dir/congestion.cpp.o"
  "CMakeFiles/uld3d_phys.dir/congestion.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/floorplan.cpp.o"
  "CMakeFiles/uld3d_phys.dir/floorplan.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/geometry.cpp.o"
  "CMakeFiles/uld3d_phys.dir/geometry.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/m3d_flow.cpp.o"
  "CMakeFiles/uld3d_phys.dir/m3d_flow.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/macro.cpp.o"
  "CMakeFiles/uld3d_phys.dir/macro.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/netlist.cpp.o"
  "CMakeFiles/uld3d_phys.dir/netlist.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/placer.cpp.o"
  "CMakeFiles/uld3d_phys.dir/placer.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/power.cpp.o"
  "CMakeFiles/uld3d_phys.dir/power.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/render.cpp.o"
  "CMakeFiles/uld3d_phys.dir/render.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/thermal_map.cpp.o"
  "CMakeFiles/uld3d_phys.dir/thermal_map.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/timing.cpp.o"
  "CMakeFiles/uld3d_phys.dir/timing.cpp.o.d"
  "CMakeFiles/uld3d_phys.dir/wirelength.cpp.o"
  "CMakeFiles/uld3d_phys.dir/wirelength.cpp.o.d"
  "libuld3d_phys.a"
  "libuld3d_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/congestion.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/congestion.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/congestion.cpp.o.d"
  "/root/repo/src/phys/floorplan.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/floorplan.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/floorplan.cpp.o.d"
  "/root/repo/src/phys/geometry.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/geometry.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/geometry.cpp.o.d"
  "/root/repo/src/phys/m3d_flow.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/m3d_flow.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/m3d_flow.cpp.o.d"
  "/root/repo/src/phys/macro.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/macro.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/macro.cpp.o.d"
  "/root/repo/src/phys/netlist.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/netlist.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/netlist.cpp.o.d"
  "/root/repo/src/phys/placer.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/placer.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/placer.cpp.o.d"
  "/root/repo/src/phys/power.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/power.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/power.cpp.o.d"
  "/root/repo/src/phys/render.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/render.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/render.cpp.o.d"
  "/root/repo/src/phys/thermal_map.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/thermal_map.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/thermal_map.cpp.o.d"
  "/root/repo/src/phys/timing.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/timing.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/timing.cpp.o.d"
  "/root/repo/src/phys/wirelength.cpp" "src/phys/CMakeFiles/uld3d_phys.dir/wirelength.cpp.o" "gcc" "src/phys/CMakeFiles/uld3d_phys.dir/wirelength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tech/CMakeFiles/uld3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libuld3d_phys.a"
)

# Empty dependencies file for uld3d_phys.
# This may be replaced when dependencies are built.

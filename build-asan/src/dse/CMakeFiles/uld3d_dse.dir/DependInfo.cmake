
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/sensitivity.cpp" "src/dse/CMakeFiles/uld3d_dse.dir/sensitivity.cpp.o" "gcc" "src/dse/CMakeFiles/uld3d_dse.dir/sensitivity.cpp.o.d"
  "/root/repo/src/dse/sweep.cpp" "src/dse/CMakeFiles/uld3d_dse.dir/sweep.cpp.o" "gcc" "src/dse/CMakeFiles/uld3d_dse.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

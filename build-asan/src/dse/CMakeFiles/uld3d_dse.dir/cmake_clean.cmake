file(REMOVE_RECURSE
  "CMakeFiles/uld3d_dse.dir/sensitivity.cpp.o"
  "CMakeFiles/uld3d_dse.dir/sensitivity.cpp.o.d"
  "CMakeFiles/uld3d_dse.dir/sweep.cpp.o"
  "CMakeFiles/uld3d_dse.dir/sweep.cpp.o.d"
  "libuld3d_dse.a"
  "libuld3d_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

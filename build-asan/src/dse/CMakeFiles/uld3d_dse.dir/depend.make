# Empty dependencies file for uld3d_dse.
# This may be replaced when dependencies are built.

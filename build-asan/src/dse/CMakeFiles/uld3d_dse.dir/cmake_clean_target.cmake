file(REMOVE_RECURSE
  "libuld3d_dse.a"
)

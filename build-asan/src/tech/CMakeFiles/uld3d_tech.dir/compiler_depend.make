# Empty compiler generated dependencies file for uld3d_tech.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_tech.dir/beol_device.cpp.o"
  "CMakeFiles/uld3d_tech.dir/beol_device.cpp.o.d"
  "CMakeFiles/uld3d_tech.dir/node_scaling.cpp.o"
  "CMakeFiles/uld3d_tech.dir/node_scaling.cpp.o.d"
  "CMakeFiles/uld3d_tech.dir/pdk.cpp.o"
  "CMakeFiles/uld3d_tech.dir/pdk.cpp.o.d"
  "CMakeFiles/uld3d_tech.dir/std_cell_library.cpp.o"
  "CMakeFiles/uld3d_tech.dir/std_cell_library.cpp.o.d"
  "CMakeFiles/uld3d_tech.dir/tier_stack.cpp.o"
  "CMakeFiles/uld3d_tech.dir/tier_stack.cpp.o.d"
  "libuld3d_tech.a"
  "libuld3d_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/beol_device.cpp" "src/tech/CMakeFiles/uld3d_tech.dir/beol_device.cpp.o" "gcc" "src/tech/CMakeFiles/uld3d_tech.dir/beol_device.cpp.o.d"
  "/root/repo/src/tech/node_scaling.cpp" "src/tech/CMakeFiles/uld3d_tech.dir/node_scaling.cpp.o" "gcc" "src/tech/CMakeFiles/uld3d_tech.dir/node_scaling.cpp.o.d"
  "/root/repo/src/tech/pdk.cpp" "src/tech/CMakeFiles/uld3d_tech.dir/pdk.cpp.o" "gcc" "src/tech/CMakeFiles/uld3d_tech.dir/pdk.cpp.o.d"
  "/root/repo/src/tech/std_cell_library.cpp" "src/tech/CMakeFiles/uld3d_tech.dir/std_cell_library.cpp.o" "gcc" "src/tech/CMakeFiles/uld3d_tech.dir/std_cell_library.cpp.o.d"
  "/root/repo/src/tech/tier_stack.cpp" "src/tech/CMakeFiles/uld3d_tech.dir/tier_stack.cpp.o" "gcc" "src/tech/CMakeFiles/uld3d_tech.dir/tier_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

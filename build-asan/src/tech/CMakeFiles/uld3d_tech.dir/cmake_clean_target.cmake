file(REMOVE_RECURSE
  "libuld3d_tech.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_sim.dir/accelerator_config.cpp.o"
  "CMakeFiles/uld3d_sim.dir/accelerator_config.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/buffer_analysis.cpp.o"
  "CMakeFiles/uld3d_sim.dir/buffer_analysis.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/layer_sim.cpp.o"
  "CMakeFiles/uld3d_sim.dir/layer_sim.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/network_sim.cpp.o"
  "CMakeFiles/uld3d_sim.dir/network_sim.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/report.cpp.o"
  "CMakeFiles/uld3d_sim.dir/report.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/systolic_trace.cpp.o"
  "CMakeFiles/uld3d_sim.dir/systolic_trace.cpp.o.d"
  "CMakeFiles/uld3d_sim.dir/tiling.cpp.o"
  "CMakeFiles/uld3d_sim.dir/tiling.cpp.o.d"
  "libuld3d_sim.a"
  "libuld3d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

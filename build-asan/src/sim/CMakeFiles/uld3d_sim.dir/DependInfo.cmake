
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerator_config.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/accelerator_config.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/accelerator_config.cpp.o.d"
  "/root/repo/src/sim/buffer_analysis.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/buffer_analysis.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/buffer_analysis.cpp.o.d"
  "/root/repo/src/sim/layer_sim.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/layer_sim.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/layer_sim.cpp.o.d"
  "/root/repo/src/sim/network_sim.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/network_sim.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/network_sim.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/systolic_trace.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/systolic_trace.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/systolic_trace.cpp.o.d"
  "/root/repo/src/sim/tiling.cpp" "src/sim/CMakeFiles/uld3d_sim.dir/tiling.cpp.o" "gcc" "src/sim/CMakeFiles/uld3d_sim.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/uld3d_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tech/CMakeFiles/uld3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for uld3d_sim.
# This may be replaced when dependencies are built.

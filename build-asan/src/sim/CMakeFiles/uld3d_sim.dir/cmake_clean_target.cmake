file(REMOVE_RECURSE
  "libuld3d_sim.a"
)

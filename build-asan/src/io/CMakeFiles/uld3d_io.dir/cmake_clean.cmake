file(REMOVE_RECURSE
  "CMakeFiles/uld3d_io.dir/config.cpp.o"
  "CMakeFiles/uld3d_io.dir/config.cpp.o.d"
  "CMakeFiles/uld3d_io.dir/study_config.cpp.o"
  "CMakeFiles/uld3d_io.dir/study_config.cpp.o.d"
  "libuld3d_io.a"
  "libuld3d_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

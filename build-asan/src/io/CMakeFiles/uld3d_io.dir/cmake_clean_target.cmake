file(REMOVE_RECURSE
  "libuld3d_io.a"
)

# Empty dependencies file for uld3d_io.
# This may be replaced when dependencies are built.

# Empty dependencies file for uld3d_core.
# This may be replaced when dependencies are built.

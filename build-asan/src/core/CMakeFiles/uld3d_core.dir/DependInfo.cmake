
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_model.cpp" "src/core/CMakeFiles/uld3d_core.dir/area_model.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/area_model.cpp.o.d"
  "/root/repo/src/core/edp_model.cpp" "src/core/CMakeFiles/uld3d_core.dir/edp_model.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/edp_model.cpp.o.d"
  "/root/repo/src/core/folding.cpp" "src/core/CMakeFiles/uld3d_core.dir/folding.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/folding.cpp.o.d"
  "/root/repo/src/core/multi_tier.cpp" "src/core/CMakeFiles/uld3d_core.dir/multi_tier.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/multi_tier.cpp.o.d"
  "/root/repo/src/core/relaxed_baseline.cpp" "src/core/CMakeFiles/uld3d_core.dir/relaxed_baseline.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/relaxed_baseline.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/uld3d_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/thermal.cpp" "src/core/CMakeFiles/uld3d_core.dir/thermal.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/thermal.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/uld3d_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/uld3d_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/uld3d_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tech/CMakeFiles/uld3d_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

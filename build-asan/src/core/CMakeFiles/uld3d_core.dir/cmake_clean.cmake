file(REMOVE_RECURSE
  "CMakeFiles/uld3d_core.dir/area_model.cpp.o"
  "CMakeFiles/uld3d_core.dir/area_model.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/edp_model.cpp.o"
  "CMakeFiles/uld3d_core.dir/edp_model.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/folding.cpp.o"
  "CMakeFiles/uld3d_core.dir/folding.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/multi_tier.cpp.o"
  "CMakeFiles/uld3d_core.dir/multi_tier.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/relaxed_baseline.cpp.o"
  "CMakeFiles/uld3d_core.dir/relaxed_baseline.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/roofline.cpp.o"
  "CMakeFiles/uld3d_core.dir/roofline.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/thermal.cpp.o"
  "CMakeFiles/uld3d_core.dir/thermal.cpp.o.d"
  "CMakeFiles/uld3d_core.dir/workload.cpp.o"
  "CMakeFiles/uld3d_core.dir/workload.cpp.o.d"
  "libuld3d_core.a"
  "libuld3d_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

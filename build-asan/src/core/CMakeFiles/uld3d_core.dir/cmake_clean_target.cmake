file(REMOVE_RECURSE
  "libuld3d_core.a"
)

# Empty dependencies file for uld3d_accel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_accel.dir/case_study.cpp.o"
  "CMakeFiles/uld3d_accel.dir/case_study.cpp.o.d"
  "CMakeFiles/uld3d_accel.dir/chip_summary.cpp.o"
  "CMakeFiles/uld3d_accel.dir/chip_summary.cpp.o.d"
  "CMakeFiles/uld3d_accel.dir/cs_design.cpp.o"
  "CMakeFiles/uld3d_accel.dir/cs_design.cpp.o.d"
  "CMakeFiles/uld3d_accel.dir/cs_netlist.cpp.o"
  "CMakeFiles/uld3d_accel.dir/cs_netlist.cpp.o.d"
  "libuld3d_accel.a"
  "libuld3d_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

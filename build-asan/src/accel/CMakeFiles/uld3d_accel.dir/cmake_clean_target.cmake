file(REMOVE_RECURSE
  "libuld3d_accel.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_nn.dir/generator.cpp.o"
  "CMakeFiles/uld3d_nn.dir/generator.cpp.o.d"
  "CMakeFiles/uld3d_nn.dir/layer.cpp.o"
  "CMakeFiles/uld3d_nn.dir/layer.cpp.o.d"
  "CMakeFiles/uld3d_nn.dir/network.cpp.o"
  "CMakeFiles/uld3d_nn.dir/network.cpp.o.d"
  "CMakeFiles/uld3d_nn.dir/zoo.cpp.o"
  "CMakeFiles/uld3d_nn.dir/zoo.cpp.o.d"
  "libuld3d_nn.a"
  "libuld3d_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/generator.cpp" "src/nn/CMakeFiles/uld3d_nn.dir/generator.cpp.o" "gcc" "src/nn/CMakeFiles/uld3d_nn.dir/generator.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/uld3d_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/uld3d_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/uld3d_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/uld3d_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/uld3d_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/uld3d_nn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

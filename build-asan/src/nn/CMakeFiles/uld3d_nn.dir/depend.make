# Empty dependencies file for uld3d_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libuld3d_nn.a"
)

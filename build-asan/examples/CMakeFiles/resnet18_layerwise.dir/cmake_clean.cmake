file(REMOVE_RECURSE
  "CMakeFiles/resnet18_layerwise.dir/resnet18_layerwise.cpp.o"
  "CMakeFiles/resnet18_layerwise.dir/resnet18_layerwise.cpp.o.d"
  "resnet18_layerwise"
  "resnet18_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet18_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for resnet18_layerwise.
# This may be replaced when dependencies are built.

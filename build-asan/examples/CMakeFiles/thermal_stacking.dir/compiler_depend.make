# Empty compiler generated dependencies file for thermal_stacking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/thermal_stacking.dir/thermal_stacking.cpp.o"
  "CMakeFiles/thermal_stacking.dir/thermal_stacking.cpp.o.d"
  "thermal_stacking"
  "thermal_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/floorplan_viewer.dir/floorplan_viewer.cpp.o"
  "CMakeFiles/floorplan_viewer.dir/floorplan_viewer.cpp.o.d"
  "floorplan_viewer"
  "floorplan_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for floorplan_viewer.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for chip_datasheet.
# This may be replaced when dependencies are built.

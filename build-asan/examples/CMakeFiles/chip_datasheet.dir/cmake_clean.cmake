file(REMOVE_RECURSE
  "CMakeFiles/chip_datasheet.dir/chip_datasheet.cpp.o"
  "CMakeFiles/chip_datasheet.dir/chip_datasheet.cpp.o.d"
  "chip_datasheet"
  "chip_datasheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/custom_accelerator.dir/custom_accelerator.cpp.o"
  "CMakeFiles/custom_accelerator.dir/custom_accelerator.cpp.o.d"
  "custom_accelerator"
  "custom_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

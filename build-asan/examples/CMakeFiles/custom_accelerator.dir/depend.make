# Empty dependencies file for custom_accelerator.
# This may be replaced when dependencies are built.

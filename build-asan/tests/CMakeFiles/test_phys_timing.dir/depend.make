# Empty dependencies file for test_phys_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_timing.dir/test_phys_timing.cpp.o"
  "CMakeFiles/test_phys_timing.dir/test_phys_timing.cpp.o.d"
  "test_phys_timing"
  "test_phys_timing.pdb"
  "test_phys_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_core_edp_properties.dir/test_core_edp_properties.cpp.o"
  "CMakeFiles/test_core_edp_properties.dir/test_core_edp_properties.cpp.o.d"
  "test_core_edp_properties"
  "test_core_edp_properties.pdb"
  "test_core_edp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_edp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_core_edp_properties.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_sim_network.
# This may be replaced when dependencies are built.

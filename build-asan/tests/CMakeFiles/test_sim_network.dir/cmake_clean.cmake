file(REMOVE_RECURSE
  "CMakeFiles/test_sim_network.dir/test_sim_network.cpp.o"
  "CMakeFiles/test_sim_network.dir/test_sim_network.cpp.o.d"
  "test_sim_network"
  "test_sim_network.pdb"
  "test_sim_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_nn_generator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_nn_generator.dir/test_nn_generator.cpp.o"
  "CMakeFiles/test_nn_generator.dir/test_nn_generator.cpp.o.d"
  "test_nn_generator"
  "test_nn_generator.pdb"
  "test_nn_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

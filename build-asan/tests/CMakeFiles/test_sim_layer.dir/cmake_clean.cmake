file(REMOVE_RECURSE
  "CMakeFiles/test_sim_layer.dir/test_sim_layer.cpp.o"
  "CMakeFiles/test_sim_layer.dir/test_sim_layer.cpp.o.d"
  "test_sim_layer"
  "test_sim_layer.pdb"
  "test_sim_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

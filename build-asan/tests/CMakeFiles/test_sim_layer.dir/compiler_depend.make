# Empty compiler generated dependencies file for test_sim_layer.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_accel_chip_summary.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_accel_chip_summary.dir/test_accel_chip_summary.cpp.o"
  "CMakeFiles/test_accel_chip_summary.dir/test_accel_chip_summary.cpp.o.d"
  "test_accel_chip_summary"
  "test_accel_chip_summary.pdb"
  "test_accel_chip_summary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_chip_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

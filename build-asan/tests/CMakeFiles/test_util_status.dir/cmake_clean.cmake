file(REMOVE_RECURSE
  "CMakeFiles/test_util_status.dir/test_util_status.cpp.o"
  "CMakeFiles/test_util_status.dir/test_util_status.cpp.o.d"
  "test_util_status"
  "test_util_status.pdb"
  "test_util_status[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_util_status.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_phys_netlist.
# This may be replaced when dependencies are built.

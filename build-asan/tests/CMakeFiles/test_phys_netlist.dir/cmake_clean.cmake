file(REMOVE_RECURSE
  "CMakeFiles/test_phys_netlist.dir/test_phys_netlist.cpp.o"
  "CMakeFiles/test_phys_netlist.dir/test_phys_netlist.cpp.o.d"
  "test_phys_netlist"
  "test_phys_netlist.pdb"
  "test_phys_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_phys_render.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_render.dir/test_phys_render.cpp.o"
  "CMakeFiles/test_phys_render.dir/test_phys_render.cpp.o.d"
  "test_phys_render"
  "test_phys_render.pdb"
  "test_phys_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

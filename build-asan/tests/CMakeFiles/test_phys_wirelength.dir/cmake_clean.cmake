file(REMOVE_RECURSE
  "CMakeFiles/test_phys_wirelength.dir/test_phys_wirelength.cpp.o"
  "CMakeFiles/test_phys_wirelength.dir/test_phys_wirelength.cpp.o.d"
  "test_phys_wirelength"
  "test_phys_wirelength.pdb"
  "test_phys_wirelength[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_wirelength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_phys_wirelength.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_phys_thermal_map.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_thermal_map.dir/test_phys_thermal_map.cpp.o"
  "CMakeFiles/test_phys_thermal_map.dir/test_phys_thermal_map.cpp.o.d"
  "test_phys_thermal_map"
  "test_phys_thermal_map.pdb"
  "test_phys_thermal_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_thermal_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_io_study_config.dir/test_io_study_config.cpp.o"
  "CMakeFiles/test_io_study_config.dir/test_io_study_config.cpp.o.d"
  "test_io_study_config"
  "test_io_study_config.pdb"
  "test_io_study_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_study_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

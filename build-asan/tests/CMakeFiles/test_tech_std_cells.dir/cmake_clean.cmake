file(REMOVE_RECURSE
  "CMakeFiles/test_tech_std_cells.dir/test_tech_std_cells.cpp.o"
  "CMakeFiles/test_tech_std_cells.dir/test_tech_std_cells.cpp.o.d"
  "test_tech_std_cells"
  "test_tech_std_cells.pdb"
  "test_tech_std_cells[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_std_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

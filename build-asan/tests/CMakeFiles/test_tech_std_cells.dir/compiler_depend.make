# Empty compiler generated dependencies file for test_tech_std_cells.
# This may be replaced when dependencies are built.

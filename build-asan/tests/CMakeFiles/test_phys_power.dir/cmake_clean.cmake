file(REMOVE_RECURSE
  "CMakeFiles/test_phys_power.dir/test_phys_power.cpp.o"
  "CMakeFiles/test_phys_power.dir/test_phys_power.cpp.o.d"
  "test_phys_power"
  "test_phys_power.pdb"
  "test_phys_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_phys_power.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_util_table.dir/test_util_table.cpp.o"
  "CMakeFiles/test_util_table.dir/test_util_table.cpp.o.d"
  "test_util_table"
  "test_util_table.pdb"
  "test_util_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

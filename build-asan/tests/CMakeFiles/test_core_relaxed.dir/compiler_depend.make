# Empty compiler generated dependencies file for test_core_relaxed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_relaxed.dir/test_core_relaxed.cpp.o"
  "CMakeFiles/test_core_relaxed.dir/test_core_relaxed.cpp.o.d"
  "test_core_relaxed"
  "test_core_relaxed.pdb"
  "test_core_relaxed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_relaxed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

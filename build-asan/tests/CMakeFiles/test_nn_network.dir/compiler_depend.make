# Empty compiler generated dependencies file for test_nn_network.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_nn_network.dir/test_nn_network.cpp.o"
  "CMakeFiles/test_nn_network.dir/test_nn_network.cpp.o.d"
  "test_nn_network"
  "test_nn_network.pdb"
  "test_nn_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_tiling.dir/test_sim_tiling.cpp.o"
  "CMakeFiles/test_sim_tiling.dir/test_sim_tiling.cpp.o.d"
  "test_sim_tiling"
  "test_sim_tiling.pdb"
  "test_sim_tiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sim_tiling.
# This may be replaced when dependencies are built.

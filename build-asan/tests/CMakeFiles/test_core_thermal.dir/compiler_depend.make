# Empty compiler generated dependencies file for test_core_thermal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_thermal.dir/test_core_thermal.cpp.o"
  "CMakeFiles/test_core_thermal.dir/test_core_thermal.cpp.o.d"
  "test_core_thermal"
  "test_core_thermal.pdb"
  "test_core_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_accel_case_study.dir/test_accel_case_study.cpp.o"
  "CMakeFiles/test_accel_case_study.dir/test_accel_case_study.cpp.o.d"
  "test_accel_case_study"
  "test_accel_case_study.pdb"
  "test_accel_case_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_accel_case_study.
# This may be replaced when dependencies are built.

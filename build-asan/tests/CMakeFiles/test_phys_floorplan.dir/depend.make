# Empty dependencies file for test_phys_floorplan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_floorplan.dir/test_phys_floorplan.cpp.o"
  "CMakeFiles/test_phys_floorplan.dir/test_phys_floorplan.cpp.o.d"
  "test_phys_floorplan"
  "test_phys_floorplan.pdb"
  "test_phys_floorplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

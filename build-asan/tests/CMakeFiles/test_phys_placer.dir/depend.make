# Empty dependencies file for test_phys_placer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_placer.dir/test_phys_placer.cpp.o"
  "CMakeFiles/test_phys_placer.dir/test_phys_placer.cpp.o.d"
  "test_phys_placer"
  "test_phys_placer.pdb"
  "test_phys_placer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

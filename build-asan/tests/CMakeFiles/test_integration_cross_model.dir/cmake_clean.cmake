file(REMOVE_RECURSE
  "CMakeFiles/test_integration_cross_model.dir/test_integration_cross_model.cpp.o"
  "CMakeFiles/test_integration_cross_model.dir/test_integration_cross_model.cpp.o.d"
  "test_integration_cross_model"
  "test_integration_cross_model.pdb"
  "test_integration_cross_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_cross_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_integration_cross_model.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_io_config_malformed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_io_config_malformed.dir/test_io_config_malformed.cpp.o"
  "CMakeFiles/test_io_config_malformed.dir/test_io_config_malformed.cpp.o.d"
  "test_io_config_malformed"
  "test_io_config_malformed.pdb"
  "test_io_config_malformed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_config_malformed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dse_sweep.dir/test_dse_sweep.cpp.o"
  "CMakeFiles/test_dse_sweep.dir/test_dse_sweep.cpp.o.d"
  "test_dse_sweep"
  "test_dse_sweep.pdb"
  "test_dse_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_dse_sweep.
# This may be replaced when dependencies are built.

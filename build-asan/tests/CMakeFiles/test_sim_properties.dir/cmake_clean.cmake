file(REMOVE_RECURSE
  "CMakeFiles/test_sim_properties.dir/test_sim_properties.cpp.o"
  "CMakeFiles/test_sim_properties.dir/test_sim_properties.cpp.o.d"
  "test_sim_properties"
  "test_sim_properties.pdb"
  "test_sim_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

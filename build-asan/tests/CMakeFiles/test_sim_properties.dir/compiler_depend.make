# Empty compiler generated dependencies file for test_sim_properties.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_cost.dir/test_mapper_cost.cpp.o"
  "CMakeFiles/test_mapper_cost.dir/test_mapper_cost.cpp.o.d"
  "test_mapper_cost"
  "test_mapper_cost.pdb"
  "test_mapper_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

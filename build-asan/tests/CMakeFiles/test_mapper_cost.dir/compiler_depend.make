# Empty compiler generated dependencies file for test_mapper_cost.
# This may be replaced when dependencies are built.

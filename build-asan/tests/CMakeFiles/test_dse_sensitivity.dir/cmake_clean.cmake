file(REMOVE_RECURSE
  "CMakeFiles/test_dse_sensitivity.dir/test_dse_sensitivity.cpp.o"
  "CMakeFiles/test_dse_sensitivity.dir/test_dse_sensitivity.cpp.o.d"
  "test_dse_sensitivity"
  "test_dse_sensitivity.pdb"
  "test_dse_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_dse_sensitivity.
# This may be replaced when dependencies are built.

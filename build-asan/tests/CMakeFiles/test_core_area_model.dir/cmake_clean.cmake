file(REMOVE_RECURSE
  "CMakeFiles/test_core_area_model.dir/test_core_area_model.cpp.o"
  "CMakeFiles/test_core_area_model.dir/test_core_area_model.cpp.o.d"
  "test_core_area_model"
  "test_core_area_model.pdb"
  "test_core_area_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_area_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_core_area_model.
# This may be replaced when dependencies are built.

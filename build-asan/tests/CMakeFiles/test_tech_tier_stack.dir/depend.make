# Empty dependencies file for test_tech_tier_stack.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tech_tier_stack.dir/test_tech_tier_stack.cpp.o"
  "CMakeFiles/test_tech_tier_stack.dir/test_tech_tier_stack.cpp.o.d"
  "test_tech_tier_stack"
  "test_tech_tier_stack.pdb"
  "test_tech_tier_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_tier_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_core_multi_tier.dir/test_core_multi_tier.cpp.o"
  "CMakeFiles/test_core_multi_tier.dir/test_core_multi_tier.cpp.o.d"
  "test_core_multi_tier"
  "test_core_multi_tier.pdb"
  "test_core_multi_tier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multi_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_core_multi_tier.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_util_export.
# This may be replaced when dependencies are built.

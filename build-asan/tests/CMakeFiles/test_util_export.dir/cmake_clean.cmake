file(REMOVE_RECURSE
  "CMakeFiles/test_util_export.dir/test_util_export.cpp.o"
  "CMakeFiles/test_util_export.dir/test_util_export.cpp.o.d"
  "test_util_export"
  "test_util_export.pdb"
  "test_util_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

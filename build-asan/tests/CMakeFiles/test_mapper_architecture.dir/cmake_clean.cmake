file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_architecture.dir/test_mapper_architecture.cpp.o"
  "CMakeFiles/test_mapper_architecture.dir/test_mapper_architecture.cpp.o.d"
  "test_mapper_architecture"
  "test_mapper_architecture.pdb"
  "test_mapper_architecture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

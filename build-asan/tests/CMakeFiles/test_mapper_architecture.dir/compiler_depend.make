# Empty compiler generated dependencies file for test_mapper_architecture.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_edp_model.dir/test_core_edp_model.cpp.o"
  "CMakeFiles/test_core_edp_model.dir/test_core_edp_model.cpp.o.d"
  "test_core_edp_model"
  "test_core_edp_model.pdb"
  "test_core_edp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_edp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_core_edp_model.
# This may be replaced when dependencies are built.

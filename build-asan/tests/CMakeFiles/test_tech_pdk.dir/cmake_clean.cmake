file(REMOVE_RECURSE
  "CMakeFiles/test_tech_pdk.dir/test_tech_pdk.cpp.o"
  "CMakeFiles/test_tech_pdk.dir/test_tech_pdk.cpp.o.d"
  "test_tech_pdk"
  "test_tech_pdk.pdb"
  "test_tech_pdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_pdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_tech_pdk.
# This may be replaced when dependencies are built.

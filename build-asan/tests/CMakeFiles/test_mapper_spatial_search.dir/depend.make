# Empty dependencies file for test_mapper_spatial_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_spatial_search.dir/test_mapper_spatial_search.cpp.o"
  "CMakeFiles/test_mapper_spatial_search.dir/test_mapper_spatial_search.cpp.o.d"
  "test_mapper_spatial_search"
  "test_mapper_spatial_search.pdb"
  "test_mapper_spatial_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_spatial_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

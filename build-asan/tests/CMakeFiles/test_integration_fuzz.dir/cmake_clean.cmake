file(REMOVE_RECURSE
  "CMakeFiles/test_integration_fuzz.dir/test_integration_fuzz.cpp.o"
  "CMakeFiles/test_integration_fuzz.dir/test_integration_fuzz.cpp.o.d"
  "test_integration_fuzz"
  "test_integration_fuzz.pdb"
  "test_integration_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

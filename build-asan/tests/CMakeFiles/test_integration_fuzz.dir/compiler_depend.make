# Empty compiler generated dependencies file for test_integration_fuzz.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_integration_paper.dir/test_integration_paper.cpp.o"
  "CMakeFiles/test_integration_paper.dir/test_integration_paper.cpp.o.d"
  "test_integration_paper"
  "test_integration_paper.pdb"
  "test_integration_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_integration_paper.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_phys_geometry.
# This may be replaced when dependencies are built.

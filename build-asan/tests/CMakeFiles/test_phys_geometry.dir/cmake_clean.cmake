file(REMOVE_RECURSE
  "CMakeFiles/test_phys_geometry.dir/test_phys_geometry.cpp.o"
  "CMakeFiles/test_phys_geometry.dir/test_phys_geometry.cpp.o.d"
  "test_phys_geometry"
  "test_phys_geometry.pdb"
  "test_phys_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

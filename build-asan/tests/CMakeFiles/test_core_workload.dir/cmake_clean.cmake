file(REMOVE_RECURSE
  "CMakeFiles/test_core_workload.dir/test_core_workload.cpp.o"
  "CMakeFiles/test_core_workload.dir/test_core_workload.cpp.o.d"
  "test_core_workload"
  "test_core_workload.pdb"
  "test_core_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_util_log.dir/test_util_log.cpp.o"
  "CMakeFiles/test_util_log.dir/test_util_log.cpp.o.d"
  "test_util_log"
  "test_util_log.pdb"
  "test_util_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

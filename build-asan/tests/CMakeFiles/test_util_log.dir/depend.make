# Empty dependencies file for test_util_log.
# This may be replaced when dependencies are built.

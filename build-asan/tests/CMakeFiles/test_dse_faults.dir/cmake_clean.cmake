file(REMOVE_RECURSE
  "CMakeFiles/test_dse_faults.dir/test_dse_faults.cpp.o"
  "CMakeFiles/test_dse_faults.dir/test_dse_faults.cpp.o.d"
  "test_dse_faults"
  "test_dse_faults.pdb"
  "test_dse_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_nn_zoo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_nn_zoo.dir/test_nn_zoo.cpp.o"
  "CMakeFiles/test_nn_zoo.dir/test_nn_zoo.cpp.o.d"
  "test_nn_zoo"
  "test_nn_zoo.pdb"
  "test_nn_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

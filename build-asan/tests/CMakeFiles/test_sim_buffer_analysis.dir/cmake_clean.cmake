file(REMOVE_RECURSE
  "CMakeFiles/test_sim_buffer_analysis.dir/test_sim_buffer_analysis.cpp.o"
  "CMakeFiles/test_sim_buffer_analysis.dir/test_sim_buffer_analysis.cpp.o.d"
  "test_sim_buffer_analysis"
  "test_sim_buffer_analysis.pdb"
  "test_sim_buffer_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_buffer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sim_buffer_analysis.
# This may be replaced when dependencies are built.

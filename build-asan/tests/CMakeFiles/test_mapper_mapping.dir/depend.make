# Empty dependencies file for test_mapper_mapping.
# This may be replaced when dependencies are built.

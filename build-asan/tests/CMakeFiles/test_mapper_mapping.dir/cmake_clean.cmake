file(REMOVE_RECURSE
  "CMakeFiles/test_mapper_mapping.dir/test_mapper_mapping.cpp.o"
  "CMakeFiles/test_mapper_mapping.dir/test_mapper_mapping.cpp.o.d"
  "test_mapper_mapping"
  "test_mapper_mapping.pdb"
  "test_mapper_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

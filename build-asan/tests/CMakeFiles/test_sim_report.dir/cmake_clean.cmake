file(REMOVE_RECURSE
  "CMakeFiles/test_sim_report.dir/test_sim_report.cpp.o"
  "CMakeFiles/test_sim_report.dir/test_sim_report.cpp.o.d"
  "test_sim_report"
  "test_sim_report.pdb"
  "test_sim_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

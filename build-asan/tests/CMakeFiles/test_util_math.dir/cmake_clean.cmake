file(REMOVE_RECURSE
  "CMakeFiles/test_util_math.dir/test_util_math.cpp.o"
  "CMakeFiles/test_util_math.dir/test_util_math.cpp.o.d"
  "test_util_math"
  "test_util_math.pdb"
  "test_util_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_util_math.
# This may be replaced when dependencies are built.

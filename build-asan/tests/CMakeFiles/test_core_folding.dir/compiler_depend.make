# Empty compiler generated dependencies file for test_core_folding.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_folding.dir/test_core_folding.cpp.o"
  "CMakeFiles/test_core_folding.dir/test_core_folding.cpp.o.d"
  "test_core_folding"
  "test_core_folding.pdb"
  "test_core_folding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_util_check.dir/test_util_check.cpp.o"
  "CMakeFiles/test_util_check.dir/test_util_check.cpp.o.d"
  "test_util_check"
  "test_util_check.pdb"
  "test_util_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

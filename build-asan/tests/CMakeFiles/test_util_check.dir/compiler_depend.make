# Empty compiler generated dependencies file for test_util_check.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_core_roofline.
# This may be replaced when dependencies are built.

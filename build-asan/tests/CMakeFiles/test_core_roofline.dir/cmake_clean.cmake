file(REMOVE_RECURSE
  "CMakeFiles/test_core_roofline.dir/test_core_roofline.cpp.o"
  "CMakeFiles/test_core_roofline.dir/test_core_roofline.cpp.o.d"
  "test_core_roofline"
  "test_core_roofline.pdb"
  "test_core_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

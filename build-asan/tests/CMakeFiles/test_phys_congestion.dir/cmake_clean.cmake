file(REMOVE_RECURSE
  "CMakeFiles/test_phys_congestion.dir/test_phys_congestion.cpp.o"
  "CMakeFiles/test_phys_congestion.dir/test_phys_congestion.cpp.o.d"
  "test_phys_congestion"
  "test_phys_congestion.pdb"
  "test_phys_congestion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

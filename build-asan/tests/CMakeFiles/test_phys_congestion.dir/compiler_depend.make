# Empty compiler generated dependencies file for test_phys_congestion.
# This may be replaced when dependencies are built.

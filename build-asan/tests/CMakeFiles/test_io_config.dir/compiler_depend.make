# Empty compiler generated dependencies file for test_io_config.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_io_config.dir/test_io_config.cpp.o"
  "CMakeFiles/test_io_config.dir/test_io_config.cpp.o.d"
  "test_io_config"
  "test_io_config.pdb"
  "test_io_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_nn_layer.dir/test_nn_layer.cpp.o"
  "CMakeFiles/test_nn_layer.dir/test_nn_layer.cpp.o.d"
  "test_nn_layer"
  "test_nn_layer.pdb"
  "test_nn_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_nn_layer.
# This may be replaced when dependencies are built.

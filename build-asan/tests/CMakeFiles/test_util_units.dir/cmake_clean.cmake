file(REMOVE_RECURSE
  "CMakeFiles/test_util_units.dir/test_util_units.cpp.o"
  "CMakeFiles/test_util_units.dir/test_util_units.cpp.o.d"
  "test_util_units"
  "test_util_units.pdb"
  "test_util_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_util_units.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tech_beol_device.dir/test_tech_beol_device.cpp.o"
  "CMakeFiles/test_tech_beol_device.dir/test_tech_beol_device.cpp.o.d"
  "test_tech_beol_device"
  "test_tech_beol_device.pdb"
  "test_tech_beol_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_beol_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

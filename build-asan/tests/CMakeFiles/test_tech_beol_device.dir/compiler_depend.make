# Empty compiler generated dependencies file for test_tech_beol_device.
# This may be replaced when dependencies are built.

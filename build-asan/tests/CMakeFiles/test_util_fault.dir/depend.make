# Empty dependencies file for test_util_fault.
# This may be replaced when dependencies are built.

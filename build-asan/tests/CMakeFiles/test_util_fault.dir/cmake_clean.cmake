file(REMOVE_RECURSE
  "CMakeFiles/test_util_fault.dir/test_util_fault.cpp.o"
  "CMakeFiles/test_util_fault.dir/test_util_fault.cpp.o.d"
  "test_util_fault"
  "test_util_fault.pdb"
  "test_util_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_tech_node_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tech_node_scaling.dir/test_tech_node_scaling.cpp.o"
  "CMakeFiles/test_tech_node_scaling.dir/test_tech_node_scaling.cpp.o.d"
  "test_tech_node_scaling"
  "test_tech_node_scaling.pdb"
  "test_tech_node_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

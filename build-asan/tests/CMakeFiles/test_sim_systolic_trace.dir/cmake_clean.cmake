file(REMOVE_RECURSE
  "CMakeFiles/test_sim_systolic_trace.dir/test_sim_systolic_trace.cpp.o"
  "CMakeFiles/test_sim_systolic_trace.dir/test_sim_systolic_trace.cpp.o.d"
  "test_sim_systolic_trace"
  "test_sim_systolic_trace.pdb"
  "test_sim_systolic_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_systolic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sim_systolic_trace.
# This may be replaced when dependencies are built.

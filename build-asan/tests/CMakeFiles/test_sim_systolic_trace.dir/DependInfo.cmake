
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_systolic_trace.cpp" "tests/CMakeFiles/test_sim_systolic_trace.dir/test_sim_systolic_trace.cpp.o" "gcc" "tests/CMakeFiles/test_sim_systolic_trace.dir/test_sim_systolic_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/io/CMakeFiles/uld3d_io.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/accel/CMakeFiles/uld3d_accel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mapper/CMakeFiles/uld3d_mapper.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/phys/CMakeFiles/uld3d_phys.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dse/CMakeFiles/uld3d_dse.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/uld3d_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/uld3d_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nn/CMakeFiles/uld3d_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tech/CMakeFiles/uld3d_tech.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/uld3d_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_accel_cs_netlist.
# This may be replaced when dependencies are built.

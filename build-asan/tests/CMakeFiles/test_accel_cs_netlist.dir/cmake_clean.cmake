file(REMOVE_RECURSE
  "CMakeFiles/test_accel_cs_netlist.dir/test_accel_cs_netlist.cpp.o"
  "CMakeFiles/test_accel_cs_netlist.dir/test_accel_cs_netlist.cpp.o.d"
  "test_accel_cs_netlist"
  "test_accel_cs_netlist.pdb"
  "test_accel_cs_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_cs_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

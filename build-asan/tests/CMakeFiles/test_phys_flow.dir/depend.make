# Empty dependencies file for test_phys_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phys_flow.dir/test_phys_flow.cpp.o"
  "CMakeFiles/test_phys_flow.dir/test_phys_flow.cpp.o.d"
  "test_phys_flow"
  "test_phys_flow.pdb"
  "test_phys_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

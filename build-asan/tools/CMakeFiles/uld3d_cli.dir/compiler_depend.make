# Empty compiler generated dependencies file for uld3d_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uld3d_cli.dir/uld3d_cli.cpp.o"
  "CMakeFiles/uld3d_cli.dir/uld3d_cli.cpp.o.d"
  "uld3d_cli"
  "uld3d_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uld3d_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

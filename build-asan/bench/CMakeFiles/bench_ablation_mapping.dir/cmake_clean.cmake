file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mapping.dir/bench_ablation_mapping.cpp.o"
  "CMakeFiles/bench_ablation_mapping.dir/bench_ablation_mapping.cpp.o.d"
  "bench_ablation_mapping"
  "bench_ablation_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

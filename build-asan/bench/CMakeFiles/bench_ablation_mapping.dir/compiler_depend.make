# Empty compiler generated dependencies file for bench_ablation_mapping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_folding_contrast.dir/bench_fig1_folding_contrast.cpp.o"
  "CMakeFiles/bench_fig1_folding_contrast.dir/bench_fig1_folding_contrast.cpp.o.d"
  "bench_fig1_folding_contrast"
  "bench_fig1_folding_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_folding_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

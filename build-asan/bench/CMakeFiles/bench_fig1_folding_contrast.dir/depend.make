# Empty dependencies file for bench_fig1_folding_contrast.
# This may be replaced when dependencies are built.

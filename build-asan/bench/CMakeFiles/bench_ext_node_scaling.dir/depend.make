# Empty dependencies file for bench_ext_node_scaling.
# This may be replaced when dependencies are built.

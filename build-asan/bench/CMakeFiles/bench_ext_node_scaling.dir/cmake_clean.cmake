file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_node_scaling.dir/bench_ext_node_scaling.cpp.o"
  "CMakeFiles/bench_ext_node_scaling.dir/bench_ext_node_scaling.cpp.o.d"
  "bench_ext_node_scaling"
  "bench_ext_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table1_resnet18.
# This may be replaced when dependencies are built.

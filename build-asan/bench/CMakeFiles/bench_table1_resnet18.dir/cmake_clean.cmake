file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_resnet18.dir/bench_table1_resnet18.cpp.o"
  "CMakeFiles/bench_table1_resnet18.dir/bench_table1_resnet18.cpp.o.d"
  "bench_table1_resnet18"
  "bench_table1_resnet18.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_resnet18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig7_architectures.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_architectures.dir/bench_fig7_architectures.cpp.o"
  "CMakeFiles/bench_fig7_architectures.dir/bench_fig7_architectures.cpp.o.d"
  "bench_fig7_architectures"
  "bench_fig7_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

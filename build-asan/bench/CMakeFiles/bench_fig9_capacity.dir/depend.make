# Empty dependencies file for bench_fig9_capacity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_capacity.dir/bench_fig9_capacity.cpp.o"
  "CMakeFiles/bench_fig9_capacity.dir/bench_fig9_capacity.cpp.o.d"
  "bench_fig9_capacity"
  "bench_fig9_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

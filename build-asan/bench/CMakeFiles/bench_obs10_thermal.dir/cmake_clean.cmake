file(REMOVE_RECURSE
  "CMakeFiles/bench_obs10_thermal.dir/bench_obs10_thermal.cpp.o"
  "CMakeFiles/bench_obs10_thermal.dir/bench_obs10_thermal.cpp.o.d"
  "bench_obs10_thermal"
  "bench_obs10_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs10_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_obs10_thermal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_models.dir/bench_fig5_models.cpp.o"
  "CMakeFiles/bench_fig5_models.dir/bench_fig5_models.cpp.o.d"
  "bench_fig5_models"
  "bench_fig5_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_fet_width.dir/bench_fig10c_fet_width.cpp.o"
  "CMakeFiles/bench_fig10c_fet_width.dir/bench_fig10c_fet_width.cpp.o.d"
  "bench_fig10c_fet_width"
  "bench_fig10c_fet_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_fet_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

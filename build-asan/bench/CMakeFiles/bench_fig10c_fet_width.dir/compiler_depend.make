# Empty compiler generated dependencies file for bench_fig10c_fet_width.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig10d_tiers.
# This may be replaced when dependencies are built.

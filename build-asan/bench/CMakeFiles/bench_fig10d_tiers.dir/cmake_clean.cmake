file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d_tiers.dir/bench_fig10d_tiers.cpp.o"
  "CMakeFiles/bench_fig10d_tiers.dir/bench_fig10d_tiers.cpp.o.d"
  "bench_fig10d_tiers"
  "bench_fig10d_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sensitivity.dir/bench_ext_sensitivity.cpp.o"
  "CMakeFiles/bench_ext_sensitivity.dir/bench_ext_sensitivity.cpp.o.d"
  "bench_ext_sensitivity"
  "bench_ext_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

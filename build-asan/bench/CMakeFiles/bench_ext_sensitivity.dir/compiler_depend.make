# Empty compiler generated dependencies file for bench_ext_sensitivity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_obs3_sram_baseline.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_obs3_sram_baseline.

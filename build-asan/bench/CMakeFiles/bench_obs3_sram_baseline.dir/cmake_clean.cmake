file(REMOVE_RECURSE
  "CMakeFiles/bench_obs3_sram_baseline.dir/bench_obs3_sram_baseline.cpp.o"
  "CMakeFiles/bench_obs3_sram_baseline.dir/bench_obs3_sram_baseline.cpp.o.d"
  "bench_obs3_sram_baseline"
  "bench_obs3_sram_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs3_sram_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_spatial_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_spatial_search.dir/bench_ext_spatial_search.cpp.o"
  "CMakeFiles/bench_ext_spatial_search.dir/bench_ext_spatial_search.cpp.o.d"
  "bench_ext_spatial_search"
  "bench_ext_spatial_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spatial_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_physical_design.dir/bench_fig2_physical_design.cpp.o"
  "CMakeFiles/bench_fig2_physical_design.dir/bench_fig2_physical_design.cpp.o.d"
  "bench_fig2_physical_design"
  "bench_fig2_physical_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_physical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_physical_design.
# This may be replaced when dependencies are built.

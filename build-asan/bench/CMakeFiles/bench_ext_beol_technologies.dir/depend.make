# Empty dependencies file for bench_ext_beol_technologies.
# This may be replaced when dependencies are built.

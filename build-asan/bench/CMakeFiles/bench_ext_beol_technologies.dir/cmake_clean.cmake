file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_beol_technologies.dir/bench_ext_beol_technologies.cpp.o"
  "CMakeFiles/bench_ext_beol_technologies.dir/bench_ext_beol_technologies.cpp.o.d"
  "bench_ext_beol_technologies"
  "bench_ext_beol_technologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_beol_technologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

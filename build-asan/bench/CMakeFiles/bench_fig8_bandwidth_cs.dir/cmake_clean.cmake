file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bandwidth_cs.dir/bench_fig8_bandwidth_cs.cpp.o"
  "CMakeFiles/bench_fig8_bandwidth_cs.dir/bench_fig8_bandwidth_cs.cpp.o.d"
  "bench_fig8_bandwidth_cs"
  "bench_fig8_bandwidth_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bandwidth_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_bandwidth_cs.
# This may be replaced when dependencies are built.

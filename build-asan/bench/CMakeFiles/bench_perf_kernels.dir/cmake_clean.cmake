file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_kernels.dir/bench_perf_kernels.cpp.o"
  "CMakeFiles/bench_perf_kernels.dir/bench_perf_kernels.cpp.o.d"
  "bench_perf_kernels"
  "bench_perf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

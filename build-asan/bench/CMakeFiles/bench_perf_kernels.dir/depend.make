# Empty dependencies file for bench_perf_kernels.
# This may be replaced when dependencies are built.

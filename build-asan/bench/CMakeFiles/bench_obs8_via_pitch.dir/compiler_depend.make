# Empty compiler generated dependencies file for bench_obs8_via_pitch.
# This may be replaced when dependencies are built.

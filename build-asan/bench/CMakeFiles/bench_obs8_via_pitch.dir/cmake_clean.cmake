file(REMOVE_RECURSE
  "CMakeFiles/bench_obs8_via_pitch.dir/bench_obs8_via_pitch.cpp.o"
  "CMakeFiles/bench_obs8_via_pitch.dir/bench_obs8_via_pitch.cpp.o.d"
  "bench_obs8_via_pitch"
  "bench_obs8_via_pitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs8_via_pitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
